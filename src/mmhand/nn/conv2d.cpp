#include "mmhand/nn/conv2d.hpp"

#include <cmath>
#include <vector>

#include "mmhand/common/parallel.hpp"
#include "mmhand/nn/gemm.hpp"

namespace mmhand::nn {

namespace {

/// Gathers sample `s` of `x` into im2col layout: one row per
/// (channel, ki, kj) triple, one column per output pixel.
void im2col(const Tensor& x, int s, int in_ch, int kernel, int stride,
            int pad, int oh, int ow, float* cols) {
  const int h = x.dim(2), w = x.dim(3);
  const int col_cols = oh * ow;
  std::size_t r = 0;
  for (int c = 0; c < in_ch; ++c)
    for (int ki = 0; ki < kernel; ++ki)
      for (int kj = 0; kj < kernel; ++kj) {
        float* row = cols + r * col_cols;
        ++r;
        std::size_t idx = 0;
        for (int i = 0; i < oh; ++i) {
          const int src_i = i * stride + ki - pad;
          for (int j = 0; j < ow; ++j, ++idx) {
            const int src_j = j * stride + kj - pad;
            row[idx] = (src_i >= 0 && src_i < h && src_j >= 0 && src_j < w)
                           ? x.at(s, c, src_i, src_j)
                           : 0.0f;
          }
        }
      }
}

/// Per-thread im2col staging, grown on demand: steady-state inference
/// forwards allocate nothing here (audited in
/// scripts/purity_allowlist.json).
float* im2col_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::randn(
                  {out_channels, in_channels, kernel, kernel}, rng,
                  std::sqrt(2.0 / (in_channels * kernel * kernel))),
              "conv.weight"),
      bias_(Tensor::zeros({out_channels}), "conv.bias") {
  MMHAND_CHECK(in_channels >= 1 && out_channels >= 1, "Conv2d channels");
  MMHAND_CHECK(kernel >= 1 && stride >= 1 && pad >= 0, "Conv2d geometry");
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
               "Conv2d expects [N, " << in_ch_ << ", H, W]");
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_extent(h), ow = out_extent(w);
  MMHAND_CHECK(oh >= 1 && ow >= 1, "Conv2d output collapsed");
  if (training) cached_input_ = x;

  const int col_rows = in_ch_ * kernel_ * kernel_;
  const int col_cols = oh * ow;

  Tensor y({n, out_ch_, oh, ow});
  // Samples write disjoint output slices and each runs the exact serial
  // arithmetic, so the batch loop parallelizes with bitwise-identical
  // results at any thread count.  The gemm below notices the enclosing
  // region and stays serial, avoiding nested-pool oversubscription; a
  // single-sample batch (n == 1, the streaming-inference shape) keeps
  // gemm's own column-chunk parallelism instead.
  parallel_for(0, n, 1, [&](std::int64_t s64) {
    const int s = static_cast<int>(s64);
    float* cols = im2col_scratch(static_cast<std::size_t>(col_rows) *
                                 col_cols);
    im2col(x, s, in_ch_, kernel_, stride_, pad_, oh, ow, cols);
    // y_s = W_flat [OC x col_rows] * cols [col_rows x col_cols]
    float* ys = y.data() +
                static_cast<std::size_t>(s) * out_ch_ * oh * ow;
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float b = bias_.value[static_cast<std::size_t>(oc)];
      float* dst = ys + static_cast<std::size_t>(oc) * col_cols;
      for (int j = 0; j < col_cols; ++j) dst[j] = b;
    }
    gemm_acc(weight_.value.data(), cols, ys, out_ch_, col_rows,
             col_cols);
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(), "Conv2d backward before forward");
  const Tensor& x = cached_input_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_extent(h), ow = out_extent(w);
  MMHAND_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                   grad_out.dim(1) == out_ch_ && grad_out.dim(2) == oh &&
                   grad_out.dim(3) == ow,
               "Conv2d grad shape");

  const int col_rows = in_ch_ * kernel_ * kernel_;
  const int col_cols = oh * ow;
  std::vector<float> cols(static_cast<std::size_t>(col_rows) * col_cols);
  std::vector<float> dcols(cols.size());

  Tensor grad_in = Tensor::zeros(x.shape());
  // Stays serial: every sample accumulates into the shared weight/bias
  // gradients, and a deterministic accumulation order is part of the
  // reproducibility contract.
  for (int s = 0; s < n; ++s) {
    // Rebuild the column matrix (cheaper than caching it per sample).
    im2col(x, s, in_ch_, kernel_, stride_, pad_, oh, ow, cols.data());
    const float* gs = grad_out.data() +
                      static_cast<std::size_t>(s) * out_ch_ * oh * ow;
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float* g = gs + static_cast<std::size_t>(oc) * col_cols;
      float& db = bias_.grad[static_cast<std::size_t>(oc)];
      for (int j = 0; j < col_cols; ++j) db += g[j];
    }
    // dW += gs [OC x col_cols] * cols^T.
    gemm_a_bt_acc(gs, cols.data(), weight_.grad.data(), out_ch_, col_cols,
                  col_rows);
    // dcols = W^T [col_rows x OC] * gs [OC x col_cols]
    std::fill(dcols.begin(), dcols.end(), 0.0f);
    gemm_at_b_acc(weight_.value.data(), gs, dcols.data(), col_rows, out_ch_,
                  col_cols);
    // col2im accumulate into grad_in.
    std::size_t r = 0;
    for (int c = 0; c < in_ch_; ++c)
      for (int ki = 0; ki < kernel_; ++ki)
        for (int kj = 0; kj < kernel_; ++kj) {
          const float* row = dcols.data() + r * col_cols;
          ++r;
          std::size_t idx = 0;
          for (int i = 0; i < oh; ++i) {
            const int src_i = i * stride_ + ki - pad_;
            if (src_i < 0 || src_i >= h) {
              idx += static_cast<std::size_t>(ow);
              continue;
            }
            for (int j = 0; j < ow; ++j, ++idx) {
              const int src_j = j * stride_ + kj - pad_;
              if (src_j >= 0 && src_j < w)
                grad_in.at(s, c, src_i, src_j) += row[idx];
            }
          }
        }
  }
  return grad_in;
}

ConvTranspose2d::ConvTranspose2d(int in_channels, int out_channels,
                                 int kernel, int stride, int pad, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(Tensor::randn(
                  {in_channels, out_channels, kernel, kernel}, rng,
                  std::sqrt(2.0 / (in_channels * kernel * kernel))),
              "deconv.weight"),
      bias_(Tensor::zeros({out_channels}), "deconv.bias") {
  MMHAND_CHECK(in_channels >= 1 && out_channels >= 1, "deconv channels");
  MMHAND_CHECK(kernel >= 1 && stride >= 1 && pad >= 0, "deconv geometry");
}

Tensor ConvTranspose2d::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
               "deconv expects [N, " << in_ch_ << ", H, W]");
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_extent(h), ow = out_extent(w);
  MMHAND_CHECK(oh >= 1 && ow >= 1, "deconv output collapsed");
  if (training) cached_input_ = x;

  Tensor y({n, out_ch_, oh, ow});
  for (int s = 0; s < n; ++s)
    for (int oc = 0; oc < out_ch_; ++oc) {
      const float b = bias_.value[static_cast<std::size_t>(oc)];
      for (int i = 0; i < oh; ++i)
        for (int j = 0; j < ow; ++j) y.at(s, oc, i, j) = b;
    }

  for (int s = 0; s < n; ++s)
    for (int c = 0; c < in_ch_; ++c)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float v = x.at(s, c, i, j);
          if (v == 0.0f) continue;
          for (int oc = 0; oc < out_ch_; ++oc) {
            const float* wk = weight_.value.data() +
                              ((static_cast<std::size_t>(c) * out_ch_ + oc) *
                               kernel_) *
                                  kernel_;
            for (int ki = 0; ki < kernel_; ++ki) {
              const int oi = i * stride_ + ki - pad_;
              if (oi < 0 || oi >= oh) continue;
              for (int kj = 0; kj < kernel_; ++kj) {
                const int oj = j * stride_ + kj - pad_;
                if (oj < 0 || oj >= ow) continue;
                y.at(s, oc, oi, oj) +=
                    v * wk[static_cast<std::size_t>(ki) * kernel_ + kj];
              }
            }
          }
        }
  return y;
}

Tensor ConvTranspose2d::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(), "deconv backward before forward");
  const Tensor& x = cached_input_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_extent(h), ow = out_extent(w);
  MMHAND_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                   grad_out.dim(1) == out_ch_ && grad_out.dim(2) == oh &&
                   grad_out.dim(3) == ow,
               "deconv grad shape");

  // Bias gradient.
  for (int s = 0; s < n; ++s)
    for (int oc = 0; oc < out_ch_; ++oc) {
      float acc = 0.0f;
      for (int i = 0; i < oh; ++i)
        for (int j = 0; j < ow; ++j) acc += grad_out.at(s, oc, i, j);
      bias_.grad[static_cast<std::size_t>(oc)] += acc;
    }

  Tensor grad_in = Tensor::zeros(x.shape());
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < in_ch_; ++c)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float xv = x.at(s, c, i, j);
          float dx = 0.0f;
          for (int oc = 0; oc < out_ch_; ++oc) {
            const std::size_t wbase =
                (static_cast<std::size_t>(c) * out_ch_ + oc) *
                static_cast<std::size_t>(kernel_) * kernel_;
            const float* wk = weight_.value.data() + wbase;
            float* dwk = weight_.grad.data() + wbase;
            for (int ki = 0; ki < kernel_; ++ki) {
              const int oi = i * stride_ + ki - pad_;
              if (oi < 0 || oi >= oh) continue;
              for (int kj = 0; kj < kernel_; ++kj) {
                const int oj = j * stride_ + kj - pad_;
                if (oj < 0 || oj >= ow) continue;
                const float g = grad_out.at(s, oc, oi, oj);
                dx += g * wk[static_cast<std::size_t>(ki) * kernel_ + kj];
                dwk[static_cast<std::size_t>(ki) * kernel_ + kj] += g * xv;
              }
            }
          }
          grad_in.at(s, c, i, j) = dx;
        }
  return grad_in;
}

}  // namespace mmhand::nn
