#include "mmhand/nn/layer_norm.hpp"

#include <cmath>

namespace mmhand::nn {

LayerNorm::LayerNorm(int features, double eps)
    : features_(features),
      eps_(static_cast<float>(eps)),
      gamma_(Tensor::full({features}, 1.0f), "ln.gamma"),
      beta_(Tensor::zeros({features}), "ln.beta") {
  MMHAND_CHECK(features >= 1, "LayerNorm features");
}

Tensor LayerNorm::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == features_,
               "LayerNorm expects [N, " << features_ << "]");
  const int n = x.dim(0);
  Tensor y({n, features_});
  Tensor xhat({n, features_});
  Tensor inv_std({n});
  for (int i = 0; i < n; ++i) {
    const float* xi = x.data() + static_cast<std::size_t>(i) * features_;
    float mean = 0.0f;
    for (int f = 0; f < features_; ++f) mean += xi[f];
    mean /= static_cast<float>(features_);
    float var = 0.0f;
    for (int f = 0; f < features_; ++f) {
      const float d = xi[f] - mean;
      var += d * d;
    }
    var /= static_cast<float>(features_);
    const float is = 1.0f / std::sqrt(var + eps_);
    inv_std.at(i) = is;
    float* xh = xhat.data() + static_cast<std::size_t>(i) * features_;
    float* yi = y.data() + static_cast<std::size_t>(i) * features_;
    for (int f = 0; f < features_; ++f) {
      xh[f] = (xi[f] - mean) * is;
      yi[f] = xh[f] * gamma_.value[static_cast<std::size_t>(f)] +
              beta_.value[static_cast<std::size_t>(f)];
    }
  }
  if (training) {
    normalized_ = std::move(xhat);
    inv_stddev_ = std::move(inv_std);
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!normalized_.empty(), "LayerNorm backward before forward");
  MMHAND_CHECK(grad_out.same_shape(normalized_), "LayerNorm grad shape");
  const int n = grad_out.dim(0);
  const float inv_f = 1.0f / static_cast<float>(features_);
  Tensor grad_in({n, features_});
  for (int i = 0; i < n; ++i) {
    const float* g = grad_out.data() + static_cast<std::size_t>(i) * features_;
    const float* xh =
        normalized_.data() + static_cast<std::size_t>(i) * features_;
    float* gi = grad_in.data() + static_cast<std::size_t>(i) * features_;
    // dL/dxhat = g * gamma; accumulate gamma/beta grads.
    float sum_gx = 0.0f, sum_gx_xhat = 0.0f;
    for (int f = 0; f < features_; ++f) {
      const float gx = g[f] * gamma_.value[static_cast<std::size_t>(f)];
      sum_gx += gx;
      sum_gx_xhat += gx * xh[f];
      gamma_.grad[static_cast<std::size_t>(f)] += g[f] * xh[f];
      beta_.grad[static_cast<std::size_t>(f)] += g[f];
    }
    const float is = inv_stddev_.at(i);
    for (int f = 0; f < features_; ++f) {
      const float gx = g[f] * gamma_.value[static_cast<std::size_t>(f)];
      gi[f] = is * (gx - inv_f * sum_gx - xh[f] * inv_f * sum_gx_xhat);
    }
  }
  return grad_in;
}

}  // namespace mmhand::nn
