#pragma once

// Inverted dropout: active only in training mode, identity at inference.
// Available as a regularization option for the small training budgets the
// CPU protocol uses (the paper does not specify its regularization).

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Dropout : public Layer {
 public:
  /// `rate` is the drop probability in [0, 1); the kept activations are
  /// scaled by 1/(1-rate) so the expected magnitude is unchanged.
  Dropout(double rate, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  Rng rng_;
  Tensor mask_;  ///< scaled keep mask of the last training forward
};

}  // namespace mmhand::nn
