#include "mmhand/nn/lstm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/gemm.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::nn {

namespace {

/// Per-thread recurrent-state staging, grown on demand: steady-state
/// inference forwards allocate nothing here (audited in
/// scripts/purity_allowlist.json).  Slot selects between the disjoint
/// buffers one forward needs live at once (h_prev, c_prev, step gates).
float* lstm_scratch(int slot, std::size_t floats) {
  thread_local std::vector<float> buf[3];
  auto& b = buf[slot];
  if (b.size() < floats) b.resize(floats);
  return b.data();
}

}  // namespace

Lstm::Lstm(int input_size, int hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      w_ih_(Tensor::randn({4 * hidden_size, input_size}, rng,
                          1.0 / std::sqrt(static_cast<double>(input_size))),
            "lstm.w_ih"),
      w_hh_(Tensor::randn({4 * hidden_size, hidden_size}, rng,
                          1.0 / std::sqrt(static_cast<double>(hidden_size))),
            "lstm.w_hh"),
      bias_(Tensor::zeros({4 * hidden_size}), "lstm.bias") {
  MMHAND_CHECK(input_size >= 1 && hidden_size >= 1, "Lstm sizes");
  // Forget-gate bias starts positive so early training remembers.
  for (int i = hidden_; i < 2 * hidden_; ++i)
    bias_.value[static_cast<std::size_t>(i)] = 1.0f;
}

Tensor Lstm::forward(const Tensor& x, bool training) {
  MMHAND_SPAN("nn/lstm_forward");
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == input_,
               "Lstm expects [T, " << input_ << "]");
  const int t_len = x.dim(0);
  const int h = hidden_;
  Tensor gates({t_len, 4 * h});
  Tensor cells({t_len, h});
  Tensor hiddens({t_len, h});

  // Input projections for every timestep in one GEMM: the x-dependent half
  // of the gate pre-activations has no recurrence, so batching it across
  // time turns T matrix-vector products into one [T x 4h] matrix multiply.
  Tensor pre({t_len, 4 * h});
  for (int t = 0; t < t_len; ++t) {
    float* pt = pre.data() + static_cast<std::size_t>(t) * 4 * h;
    for (int r = 0; r < 4 * h; ++r)
      pt[r] = bias_.value[static_cast<std::size_t>(r)];
  }
  gemm_a_bt_acc(x.data(), w_ih_.value.data(), pre.data(), t_len, input_,
                4 * h);

  float* h_prev = lstm_scratch(0, static_cast<std::size_t>(h));
  float* c_prev = lstm_scratch(1, static_cast<std::size_t>(h));
  std::fill(h_prev, h_prev + h, 0.0f);
  std::fill(c_prev, c_prev + h, 0.0f);
  for (int t = 0; t < t_len; ++t) {
    float* gt = gates.data() + static_cast<std::size_t>(t) * 4 * h;
    // Pre-activations: (W_ih x + b) batched above, plus W_hh h_prev.
    const float* pt = pre.data() + static_cast<std::size_t>(t) * 4 * h;
    std::copy(pt, pt + 4 * h, gt);
    gemv_acc(w_hh_.value.data(), h_prev, gt, 4 * h, h);
    // Activations and state update.
    float* ct = cells.data() + static_cast<std::size_t>(t) * h;
    float* ht = hiddens.data() + static_cast<std::size_t>(t) * h;
    for (int j = 0; j < h; ++j) {
      const float ig = sigmoid_value(gt[j]);
      const float fg = sigmoid_value(gt[h + j]);
      const float gg = tanh_value(gt[2 * h + j]);
      const float og = sigmoid_value(gt[3 * h + j]);
      gt[j] = ig;
      gt[h + j] = fg;
      gt[2 * h + j] = gg;
      gt[3 * h + j] = og;
      ct[j] = fg * c_prev[static_cast<std::size_t>(j)] + ig * gg;
      ht[j] = og * tanh_value(ct[j]);
    }
    std::copy(ht, ht + h, h_prev);
    std::copy(ct, ct + h, c_prev);
  }

  if (training) {
    cached_input_ = x;
    gates_ = std::move(gates);
    cells_ = std::move(cells);
    hiddens_ = hiddens;
    return hiddens;
  }
  return hiddens;
}

Tensor Lstm::forward_sequences(const Tensor& x, int sequences) {
  MMHAND_SPAN("nn/lstm_forward");
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == input_,
               "Lstm expects [B*T, " << input_ << "]");
  MMHAND_CHECK(sequences >= 1 && x.dim(0) % sequences == 0,
               "Lstm forward_sequences: dim0 " << x.dim(0)
                                               << " not divisible into "
                                               << sequences
                                               << " sequences");
  const int bsz = sequences;
  const int t_len = x.dim(0) / bsz;
  const int h = hidden_;
  Tensor hiddens({bsz * t_len, h});

  // Input projections for every (sample, timestep) row in one GEMM —
  // per row this is the exact arithmetic of the single-sample pass.
  Tensor pre({bsz * t_len, 4 * h});
  for (int r0 = 0; r0 < bsz * t_len; ++r0) {
    float* pt = pre.data() + static_cast<std::size_t>(r0) * 4 * h;
    for (int r = 0; r < 4 * h; ++r)
      pt[r] = bias_.value[static_cast<std::size_t>(r)];
  }
  gemm_a_bt_acc(x.data(), w_ih_.value.data(), pre.data(), bsz * t_len,
                input_, 4 * h);

  float* h_prev = lstm_scratch(0, static_cast<std::size_t>(bsz) * h);
  float* c_prev = lstm_scratch(1, static_cast<std::size_t>(bsz) * h);
  float* step = lstm_scratch(2, static_cast<std::size_t>(bsz) * 4 * h);
  std::fill(h_prev, h_prev + static_cast<std::size_t>(bsz) * h, 0.0f);
  std::fill(c_prev, c_prev + static_cast<std::size_t>(bsz) * h, 0.0f);
  for (int t = 0; t < t_len; ++t) {
    // Gather this timestep's pre-activations into a contiguous [B, 4H]
    // block, then add the recurrent projection for all samples at once.
    // gemm_a_bt_acc accumulates each output as one ascending-k scalar
    // dot product — the same order gemv_acc uses in the single-sample
    // path, so the sums round identically.
    for (int b = 0; b < bsz; ++b) {
      const float* pt =
          pre.data() +
          (static_cast<std::size_t>(b) * t_len + t) * 4 * h;
      std::copy(pt, pt + 4 * h, step + static_cast<std::size_t>(b) * 4 * h);
    }
    gemm_a_bt_acc(h_prev, w_hh_.value.data(), step, bsz, h, 4 * h);
    for (int b = 0; b < bsz; ++b) {
      float* gt = step + static_cast<std::size_t>(b) * 4 * h;
      float* cb = c_prev + static_cast<std::size_t>(b) * h;
      float* hb = h_prev + static_cast<std::size_t>(b) * h;
      float* ht = hiddens.data() +
                  (static_cast<std::size_t>(b) * t_len + t) * h;
      for (int j = 0; j < h; ++j) {
        const float ig = sigmoid_value(gt[j]);
        const float fg = sigmoid_value(gt[h + j]);
        const float gg = tanh_value(gt[2 * h + j]);
        const float og = sigmoid_value(gt[3 * h + j]);
        cb[j] = fg * cb[j] + ig * gg;
        ht[j] = og * tanh_value(cb[j]);
        hb[j] = ht[j];
      }
    }
  }
  return hiddens;
}

Tensor Lstm::backward(const Tensor& grad_out) {
  MMHAND_SPAN("nn/lstm_backward");
  MMHAND_CHECK(!cached_input_.empty(), "Lstm backward before forward");
  const int t_len = cached_input_.dim(0);
  const int h = hidden_;
  MMHAND_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == t_len &&
                   grad_out.dim(1) == h,
               "Lstm grad shape");

  Tensor grad_in = Tensor::zeros({t_len, input_});
  std::vector<float> dh_next(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> dc_next(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> dgates(static_cast<std::size_t>(4 * h));

  for (int t = t_len - 1; t >= 0; --t) {
    const float* gt = gates_.data() + static_cast<std::size_t>(t) * 4 * h;
    const float* ct = cells_.data() + static_cast<std::size_t>(t) * h;
    const float* c_prev =
        t > 0 ? cells_.data() + static_cast<std::size_t>(t - 1) * h : nullptr;
    const float* h_prev =
        t > 0 ? hiddens_.data() + static_cast<std::size_t>(t - 1) * h
              : nullptr;
    const float* go = grad_out.data() + static_cast<std::size_t>(t) * h;
    const float* xt =
        cached_input_.data() + static_cast<std::size_t>(t) * input_;

    for (int j = 0; j < h; ++j) {
      const float ig = gt[j], fg = gt[h + j], gg = gt[2 * h + j],
                  og = gt[3 * h + j];
      const float tc = tanh_value(ct[j]);
      const float dh = go[j] + dh_next[static_cast<std::size_t>(j)];
      const float dc =
          dh * og * (1.0f - tc * tc) + dc_next[static_cast<std::size_t>(j)];
      const float cp = c_prev ? c_prev[j] : 0.0f;
      // Gate pre-activation gradients.
      dgates[static_cast<std::size_t>(j)] = dc * gg * ig * (1.0f - ig);
      dgates[static_cast<std::size_t>(h + j)] = dc * cp * fg * (1.0f - fg);
      dgates[static_cast<std::size_t>(2 * h + j)] =
          dc * ig * (1.0f - gg * gg);
      dgates[static_cast<std::size_t>(3 * h + j)] =
          dh * tc * og * (1.0f - og);
      dc_next[static_cast<std::size_t>(j)] = dc * fg;
    }

    // Parameter and input gradients; also the recurrent gradient dh_prev.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    float* dx = grad_in.data() + static_cast<std::size_t>(t) * input_;
    for (int r = 0; r < 4 * h; ++r) {
      const float dg = dgates[static_cast<std::size_t>(r)];
      if (dg == 0.0f) continue;
      bias_.grad[static_cast<std::size_t>(r)] += dg;
      float* dwi = w_ih_.grad.data() + static_cast<std::size_t>(r) * input_;
      const float* wi =
          w_ih_.value.data() + static_cast<std::size_t>(r) * input_;
      for (int f = 0; f < input_; ++f) {
        dwi[f] += dg * xt[f];
        dx[f] += dg * wi[f];
      }
      float* dwh = w_hh_.grad.data() + static_cast<std::size_t>(r) * h;
      const float* wh = w_hh_.value.data() + static_cast<std::size_t>(r) * h;
      if (h_prev) {
        for (int j = 0; j < h; ++j) {
          dwh[j] += dg * h_prev[j];
          dh_next[static_cast<std::size_t>(j)] += dg * wh[j];
        }
      }
    }
  }
  return grad_in;
}

}  // namespace mmhand::nn
