#pragma once

// Layer abstraction: explicit forward/backward with cached activations.
//
// The stack is a static-graph, define-by-layer design (no tape autograd):
// every layer stores what its backward pass needs during forward, and
// backward consumes the upstream gradient and returns the gradient with
// respect to the layer's input.  Composite modules (attention blocks,
// mmSpaceNet) chain their children's forward/backward by hand; numerical
// gradient checks in tests/test_nn.cpp pin the derivations down.

#include <memory>
#include <string>
#include <vector>

#include "mmhand/common/serialize.hpp"
#include "mmhand/nn/tensor.hpp"

namespace mmhand::nn {

/// A trainable tensor and its accumulated gradient.
struct Parameter {
  Tensor value;
  Tensor grad;
  std::string name;

  explicit Parameter(Tensor v, std::string n = {})
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        name(std::move(n)) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the output and caches whatever backward() will need.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Consumes dL/d(output), accumulates parameter gradients, and returns
  /// dL/d(input).  Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Inference over `sequences` independent samples stacked along dim 0
  /// (the darknet-style `batch*steps` layout: sample b owns rows
  /// [b*rows, (b+1)*rows)).  The default slices the stack and runs
  /// forward(training=false) per sample, so it is bitwise identical to
  /// per-sample inference for every layer; recurrent layers override it
  /// with a cross-sequence batched step that preserves that identity
  /// (the serving layer's drained-parity guarantee depends on it).
  virtual Tensor forward_sequences(const Tensor& x, int sequences);

  virtual std::string name() const = 0;
};

/// Zeroes the gradients of a parameter set.
void zero_grads(const std::vector<Parameter*>& params);

/// Total parameter count.
std::size_t parameter_count(const std::vector<Parameter*>& params);

/// Serializes parameter values (shape-checked on load).
void save_parameters(const std::vector<Parameter*>& params, BinaryWriter& w);
void load_parameters(const std::vector<Parameter*>& params, BinaryReader& r);

}  // namespace mmhand::nn
