#include "mmhand/nn/linear.hpp"

#include <cmath>

#include "mmhand/nn/gemm.hpp"

namespace mmhand::nn {

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            std::sqrt(2.0 / in_features)),
              "linear.weight"),
      bias_(Tensor::zeros({out_features}), "linear.bias") {
  MMHAND_CHECK(in_features >= 1 && out_features >= 1, "Linear dims");
}

Tensor Linear::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == in_,
               "Linear expects [N, " << in_ << "]");
  if (training) cached_input_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_});
  const float* b = bias_.value.data();
  for (int i = 0; i < n; ++i) {
    float* yi = y.data() + static_cast<std::size_t>(i) * out_;
    for (int o = 0; o < out_; ++o) yi[o] = b[o];
  }
  // y += x [N x in] * W^T with W stored [out x in].
  gemm_a_bt_acc(x.data(), weight_.value.data(), y.data(), n, in_, out_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(), "Linear backward before forward");
  MMHAND_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
               "Linear grad shape");
  const int n = grad_out.dim(0);
  MMHAND_CHECK(n == cached_input_.dim(0), "Linear batch mismatch");

  Tensor grad_in({n, in_});
  float* db = bias_.grad.data();
  for (int i = 0; i < n; ++i) {
    const float* gi =
        grad_out.data() + static_cast<std::size_t>(i) * out_;
    for (int o = 0; o < out_; ++o) db[o] += gi[o];
  }
  // dW [out x in] += dY^T [out x N] * X [N x in].
  gemm_at_b_acc(grad_out.data(), cached_input_.data(), weight_.grad.data(),
                out_, n, in_);
  // dX [N x in] += dY [N x out] * W [out x in].
  gemm_acc(grad_out.data(), weight_.value.data(), grad_in.data(), n, out_,
           in_);
  return grad_in;
}

}  // namespace mmhand::nn
