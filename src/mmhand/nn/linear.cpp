#include "mmhand/nn/linear.hpp"

#include <cmath>

namespace mmhand::nn {

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            std::sqrt(2.0 / in_features)),
              "linear.weight"),
      bias_(Tensor::zeros({out_features}), "linear.bias") {
  MMHAND_CHECK(in_features >= 1 && out_features >= 1, "Linear dims");
}

Tensor Linear::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 2 && x.dim(1) == in_,
               "Linear expects [N, " << in_ << "]");
  if (training) cached_input_ = x;
  const int n = x.dim(0);
  Tensor y({n, out_});
  const float* w = weight_.value.data();
  const float* b = bias_.value.data();
  for (int i = 0; i < n; ++i) {
    const float* xi = x.data() + static_cast<std::size_t>(i) * in_;
    float* yi = y.data() + static_cast<std::size_t>(i) * out_;
    for (int o = 0; o < out_; ++o) {
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      float acc = b[o];
      for (int k = 0; k < in_; ++k) acc += wo[k] * xi[k];
      yi[o] = acc;
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(), "Linear backward before forward");
  MMHAND_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
               "Linear grad shape");
  const int n = grad_out.dim(0);
  MMHAND_CHECK(n == cached_input_.dim(0), "Linear batch mismatch");

  Tensor grad_in({n, in_});
  float* dw = weight_.grad.data();
  float* db = bias_.grad.data();
  const float* w = weight_.value.data();
  for (int i = 0; i < n; ++i) {
    const float* gi =
        grad_out.data() + static_cast<std::size_t>(i) * out_;
    const float* xi =
        cached_input_.data() + static_cast<std::size_t>(i) * in_;
    float* di = grad_in.data() + static_cast<std::size_t>(i) * in_;
    for (int o = 0; o < out_; ++o) {
      const float g = gi[o];
      if (g == 0.0f) continue;
      db[o] += g;
      const float* wo = w + static_cast<std::size_t>(o) * in_;
      float* dwo = dw + static_cast<std::size_t>(o) * in_;
      for (int k = 0; k < in_; ++k) {
        dwo[k] += g * xi[k];
        di[k] += g * wo[k];
      }
    }
  }
  return grad_in;
}

}  // namespace mmhand::nn
