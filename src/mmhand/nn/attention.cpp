#include "mmhand/nn/attention.hpp"

#include "mmhand/nn/activations.hpp"

namespace mmhand::nn {

FrameChannelAttention::FrameChannelAttention(Rng& rng, int hidden)
    : fc1_(1, hidden, rng), fc2_(hidden, 1, rng) {}

std::vector<Parameter*> FrameChannelAttention::parameters() {
  auto p = fc1_.parameters();
  const auto p2 = fc2_.parameters();
  p.insert(p.end(), p2.begin(), p2.end());
  return p;
}

Tensor FrameChannelAttention::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 4, "FrameChannelAttention expects [st, C, H, W]");
  const int st = x.dim(0);
  const std::size_t frame_elems = x.numel() / static_cast<std::size_t>(st);

  // Per-frame descriptor: TGAP + TGMP over (C, H, W).  The argmax
  // positions only feed the backward pass, so inference skips the
  // index buffer (keeps the forward allocation-free under pooling).
  Tensor desc({st, 1});
  std::vector<std::size_t> max_idx(
      training ? static_cast<std::size_t>(st) : 0);
  for (int i = 0; i < st; ++i) {
    const float* xi = x.data() + static_cast<std::size_t>(i) * frame_elems;
    float sum = 0.0f, best = xi[0];
    std::size_t best_idx = 0;
    for (std::size_t e = 0; e < frame_elems; ++e) {
      sum += xi[e];
      if (xi[e] > best) {
        best = xi[e];
        best_idx = e;
      }
    }
    desc.at(i, 0) = sum / static_cast<float>(frame_elems) + best;
    if (training) max_idx[static_cast<std::size_t>(i)] = best_idx;
  }

  Tensor hidden = fc1_.forward(desc, training);
  Tensor mask = Tensor::zeros(hidden.shape());
  for (std::size_t e = 0; e < hidden.numel(); ++e) {
    if (hidden[e] > 0.0f)
      mask[e] = 1.0f;
    else
      hidden[e] = 0.0f;
  }
  Tensor logits = fc2_.forward(hidden, training);

  Tensor a({st});
  for (int i = 0; i < st; ++i) a.at(i) = sigmoid_value(logits.at(i, 0));

  Tensor y = x;
  for (int i = 0; i < st; ++i) {
    float* yi = y.data() + static_cast<std::size_t>(i) * frame_elems;
    const float ai = a.at(i);
    for (std::size_t e = 0; e < frame_elems; ++e) yi[e] *= ai;
  }

  if (training) {
    cached_input_ = x;
    relu_mask_ = std::move(mask);
    weights_ = std::move(a);
    max_index_ = std::move(max_idx);
  } else {
    weights_ = std::move(a);
  }
  return y;
}

Tensor FrameChannelAttention::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(),
               "FrameChannelAttention backward before forward");
  const Tensor& x = cached_input_;
  MMHAND_CHECK(grad_out.same_shape(x), "FrameChannelAttention grad shape");
  const int st = x.dim(0);
  const std::size_t frame_elems = x.numel() / static_cast<std::size_t>(st);

  // Direct path: dX = a_i * g;  gate path: da_i = sum(g . x).
  Tensor grad_in = grad_out;
  Tensor dlogits({st, 1});
  for (int i = 0; i < st; ++i) {
    const float* g = grad_out.data() + static_cast<std::size_t>(i) * frame_elems;
    const float* xi = x.data() + static_cast<std::size_t>(i) * frame_elems;
    float* d = grad_in.data() + static_cast<std::size_t>(i) * frame_elems;
    const float ai = weights_.at(i);
    float da = 0.0f;
    for (std::size_t e = 0; e < frame_elems; ++e) {
      da += g[e] * xi[e];
      d[e] = g[e] * ai;
    }
    dlogits.at(i, 0) = da * ai * (1.0f - ai);
  }

  Tensor dhidden = fc2_.backward(dlogits);
  for (std::size_t e = 0; e < dhidden.numel(); ++e)
    dhidden[e] *= relu_mask_[e];
  Tensor ddesc = fc1_.backward(dhidden);

  // Descriptor path: mean spreads 1/M, max hits the argmax element.
  for (int i = 0; i < st; ++i) {
    const float ds = ddesc.at(i, 0);
    float* d = grad_in.data() + static_cast<std::size_t>(i) * frame_elems;
    const float per_elem = ds / static_cast<float>(frame_elems);
    for (std::size_t e = 0; e < frame_elems; ++e) d[e] += per_elem;
    d[max_index_[static_cast<std::size_t>(i)]] += ds;
  }
  return grad_in;
}

ChannelAttention::ChannelAttention(int channels, Rng& rng)
    : channels_(channels), fc_(2 * channels, channels, rng) {
  MMHAND_CHECK(channels >= 1, "ChannelAttention channels");
}

Tensor ChannelAttention::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 4 && x.dim(1) == channels_,
               "ChannelAttention expects [N, " << channels_ << ", H, W]");
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = static_cast<std::size_t>(h) * w;

  Tensor desc({n, 2 * channels_});
  std::vector<std::size_t> max_idx(
      training ? static_cast<std::size_t>(n) * channels_ : 0);
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < channels_; ++c) {
      const float* xc = x.data() +
                        (static_cast<std::size_t>(s) * channels_ + c) * hw;
      float sum = 0.0f, best = xc[0];
      std::size_t best_idx = 0;
      for (std::size_t e = 0; e < hw; ++e) {
        sum += xc[e];
        if (xc[e] > best) {
          best = xc[e];
          best_idx = e;
        }
      }
      desc.at(s, c) = sum / static_cast<float>(hw);
      desc.at(s, channels_ + c) = best;
      if (training)
        max_idx[static_cast<std::size_t>(s) * channels_ + c] = best_idx;
    }

  Tensor logits = fc_.forward(desc, training);
  Tensor b({n, channels_});
  for (std::size_t e = 0; e < b.numel(); ++e)
    b[e] = sigmoid_value(logits[e]);

  Tensor y = x;
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < channels_; ++c) {
      float* yc = y.data() +
                  (static_cast<std::size_t>(s) * channels_ + c) * hw;
      const float bc = b.at(s, c);
      for (std::size_t e = 0; e < hw; ++e) yc[e] *= bc;
    }

  if (training) {
    cached_input_ = x;
    weights_ = std::move(b);
    max_index_ = std::move(max_idx);
  }
  return y;
}

Tensor ChannelAttention::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(),
               "ChannelAttention backward before forward");
  const Tensor& x = cached_input_;
  MMHAND_CHECK(grad_out.same_shape(x), "ChannelAttention grad shape");
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t hw = static_cast<std::size_t>(h) * w;

  Tensor grad_in = grad_out;
  Tensor dlogits({n, channels_});
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < channels_; ++c) {
      const std::size_t base =
          (static_cast<std::size_t>(s) * channels_ + c) * hw;
      const float* g = grad_out.data() + base;
      const float* xc = x.data() + base;
      float* d = grad_in.data() + base;
      const float bc = weights_.at(s, c);
      float db = 0.0f;
      for (std::size_t e = 0; e < hw; ++e) {
        db += g[e] * xc[e];
        d[e] = g[e] * bc;
      }
      dlogits.at(s, c) = db * bc * (1.0f - bc);
    }

  Tensor ddesc = fc_.backward(dlogits);
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < channels_; ++c) {
      const std::size_t base =
          (static_cast<std::size_t>(s) * channels_ + c) * hw;
      float* d = grad_in.data() + base;
      const float dmean = ddesc.at(s, c) / static_cast<float>(hw);
      for (std::size_t e = 0; e < hw; ++e) d[e] += dmean;
      d[max_index_[static_cast<std::size_t>(s) * channels_ + c]] +=
          ddesc.at(s, channels_ + c);
    }
  return grad_in;
}

SpatialAttention::SpatialAttention(Rng& rng, int kernel)
    : conv_(2, 1, kernel, 1, kernel / 2, rng) {
  MMHAND_CHECK(kernel % 2 == 1, "SpatialAttention kernel must be odd");
}

Tensor SpatialAttention::forward(const Tensor& x, bool training) {
  MMHAND_CHECK(x.rank() == 4, "SpatialAttention expects [N, C, H, W]");
  const int n = x.dim(0), c_dim = x.dim(1), h = x.dim(2), w = x.dim(3);

  Tensor maps({n, 2, h, w});
  std::vector<int> max_channel(
      training ? static_cast<std::size_t>(n) * h * w : 0);
  for (int s = 0; s < n; ++s)
    for (int i = 0; i < h; ++i)
      for (int j = 0; j < w; ++j) {
        float sum = 0.0f, best = x.at(s, 0, i, j);
        int best_c = 0;
        for (int c = 0; c < c_dim; ++c) {
          const float v = x.at(s, c, i, j);
          sum += v;
          if (v > best) {
            best = v;
            best_c = c;
          }
        }
        maps.at(s, 0, i, j) = sum / static_cast<float>(c_dim);
        maps.at(s, 1, i, j) = best;
        if (training)
          max_channel[(static_cast<std::size_t>(s) * h + i) * w + j] =
              best_c;
      }

  Tensor pre = conv_.forward(maps, training);
  Tensor m = pre;  // [N, 1, H, W]
  for (std::size_t e = 0; e < m.numel(); ++e) m[e] = sigmoid_value(m[e]);

  Tensor y = x;
  for (int s = 0; s < n; ++s)
    for (int c = 0; c < c_dim; ++c)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j)
          y.at(s, c, i, j) *= m.at(s, 0, i, j);

  if (training) {
    cached_input_ = x;
    weights_ = std::move(m);
    max_channel_ = std::move(max_channel);
  }
  return y;
}

Tensor SpatialAttention::backward(const Tensor& grad_out) {
  MMHAND_CHECK(!cached_input_.empty(),
               "SpatialAttention backward before forward");
  const Tensor& x = cached_input_;
  MMHAND_CHECK(grad_out.same_shape(x), "SpatialAttention grad shape");
  const int n = x.dim(0), c_dim = x.dim(1), h = x.dim(2), w = x.dim(3);

  Tensor grad_in = grad_out;
  Tensor dpre({n, 1, h, w});
  for (int s = 0; s < n; ++s)
    for (int i = 0; i < h; ++i)
      for (int j = 0; j < w; ++j) {
        const float mv = weights_.at(s, 0, i, j);
        float dm = 0.0f;
        for (int c = 0; c < c_dim; ++c) {
          dm += grad_out.at(s, c, i, j) * x.at(s, c, i, j);
          grad_in.at(s, c, i, j) = grad_out.at(s, c, i, j) * mv;
        }
        dpre.at(s, 0, i, j) = dm * mv * (1.0f - mv);
      }

  Tensor dmaps = conv_.backward(dpre);
  for (int s = 0; s < n; ++s)
    for (int i = 0; i < h; ++i)
      for (int j = 0; j < w; ++j) {
        const float dmean = dmaps.at(s, 0, i, j) / static_cast<float>(c_dim);
        for (int c = 0; c < c_dim; ++c) grad_in.at(s, c, i, j) += dmean;
        grad_in.at(
            s, max_channel_[(static_cast<std::size_t>(s) * h + i) * w + j],
            i, j) += dmaps.at(s, 1, i, j);
      }
  return grad_in;
}

}  // namespace mmhand::nn
