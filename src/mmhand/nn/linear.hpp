#pragma once

// Fully-connected layer: y = x W^T + b for x of shape [N, in].

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class Linear : public Layer {
 public:
  /// He-style initialization scaled by fan-in.
  Linear(int in_features, int out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
  std::string name() const override { return "Linear"; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_, out_;
  Parameter weight_;  ///< [out, in]
  Parameter bias_;    ///< [out]
  Tensor cached_input_;
};

}  // namespace mmhand::nn
