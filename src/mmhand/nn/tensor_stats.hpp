#pragma once

// Cheap tensor summary statistics for the numerical-health watchdog and
// the run log: one pass over the data computing finite min/max/RMS and
// NaN/Inf counts.  Read-only — never modifies or reorders anything, so
// running it cannot perturb training.

#include <cstddef>
#include <vector>

#include "mmhand/nn/layer.hpp"
#include "mmhand/nn/tensor.hpp"

namespace mmhand::nn {

struct TensorStats {
  std::size_t count = 0;      ///< total elements
  std::size_t nan_count = 0;  ///< elements that are NaN
  std::size_t inf_count = 0;  ///< elements that are ±Inf
  double min = 0.0;           ///< min over finite elements (0 when none)
  double max = 0.0;           ///< max over finite elements (0 when none)
  double rms = 0.0;           ///< sqrt(mean of squares) over finite elements

  bool all_finite() const { return nan_count == 0 && inf_count == 0; }
};

/// Single pass over `data[0..n)`.
TensorStats tensor_stats(const float* data, std::size_t n);

inline TensorStats tensor_stats(const Tensor& t) {
  return tensor_stats(t.data(), t.numel());
}

/// L2 norm over every parameter's accumulated gradient (the "global
/// gradient norm" of a step).  Non-finite entries contribute 0 to the
/// sum; pair with `tensor_stats` when NaN detection matters.
double grad_l2_norm(const std::vector<Parameter*>& params);

}  // namespace mmhand::nn
