#pragma once

// Layer normalization over the feature (last) dimension of [N, F] inputs.
// The paper's shape and IK networks use "fully-connected layers with layer
// normalization" (§V).

#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int features, double eps = 1e-5);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return "LayerNorm"; }

 private:
  int features_;
  float eps_;
  Parameter gamma_;  ///< [F], initialized to 1
  Parameter beta_;   ///< [F], initialized to 0
  Tensor normalized_;   ///< cached x_hat
  Tensor inv_stddev_;   ///< cached 1/sigma per row
};

}  // namespace mmhand::nn
