#include "mmhand/nn/activations.hpp"

#include <cmath>

namespace mmhand::nn {

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor y = x;
  if (training) mask_ = Tensor::zeros(x.shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] > 0.0f) {
      if (training) mask_[i] = 1.0f;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  MMHAND_CHECK(grad_out.same_shape(mask_), "ReLU backward shape");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i) g[i] *= mask_[i];
  return g;
}

float sigmoid_value(float x) { return 1.0f / (1.0f + std::exp(-x)); }
float tanh_value(float x) { return std::tanh(x); }

Tensor Sigmoid::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = sigmoid_value(y[i]);
  if (training) output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  MMHAND_CHECK(grad_out.same_shape(output_), "Sigmoid backward shape");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i)
    g[i] *= output_[i] * (1.0f - output_[i]);
  return g;
}

Tensor Tanh::forward(const Tensor& x, bool training) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = tanh_value(y[i]);
  if (training) output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  MMHAND_CHECK(grad_out.same_shape(output_), "Tanh backward shape");
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.numel(); ++i)
    g[i] *= 1.0f - output_[i] * output_[i];
  return g;
}

}  // namespace mmhand::nn
