#pragma once

// Dense float tensor used by the neural-network stack.
//
// Row-major, up to 4 dimensions in practice ([N, C, H, W] for feature maps,
// [T, F] for sequences).  Geometry stays in double precision elsewhere in
// the library; training runs in float like the paper's GPU implementation.
//
// Shapes live inline (`Shape`, a fixed-capacity small vector) and data
// buffers can be recycled through an opt-in thread-local pool
// (`set_tensor_pool_enabled`), so steady-state inference — where every
// forward pass requests the same multiset of buffer sizes — constructs
// and destroys tensors without touching the heap.  The pool is what lets
// the serving layer keep its per-session workspaces allocation-free and
// lets mmhand_purity_probe gate the pose forward path at zero
// allocations per call.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "mmhand/common/error.hpp"
#include "mmhand/common/rng.hpp"

namespace mmhand::nn {

/// Fixed-capacity tensor shape: the dims live inline, so building one
/// from a braced list never allocates (unlike std::vector<int>, whose
/// call-site construction defeated the allocation-free inference goal).
class Shape {
 public:
  static constexpr int kMaxRank = 6;

  Shape() = default;
  Shape(std::initializer_list<int> dims) {
    MMHAND_CHECK(dims.size() <= static_cast<std::size_t>(kMaxRank),
                 "tensor rank " << dims.size() << " exceeds " << kMaxRank);
    for (int d : dims) dims_[rank_++] = d;
  }
  // Implicit by design: existing call sites pass std::vector<int> shapes
  // (checkpoint loaders, reshape helpers) and must keep compiling.
  Shape(const std::vector<int>& dims) {  // NOLINT(google-explicit-*)
    MMHAND_CHECK(dims.size() <= static_cast<std::size_t>(kMaxRank),
                 "tensor rank " << dims.size() << " exceeds " << kMaxRank);
    for (int d : dims) dims_[rank_++] = d;
  }

  std::size_t size() const { return static_cast<std::size_t>(rank_); }
  bool empty() const { return rank_ == 0; }
  int operator[](std::size_t i) const { return dims_[i]; }
  int& operator[](std::size_t i) { return dims_[i]; }
  const int* begin() const { return dims_; }
  const int* end() const { return dims_ + rank_; }

  /// Element count; validates that every dimension is positive.
  std::size_t numel() const {
    std::size_t n = 1;
    for (int i = 0; i < rank_; ++i) {
      MMHAND_CHECK(dims_[i] >= 1, "tensor dimension " << dims_[i]);
      n *= static_cast<std::size_t>(dims_[i]);
    }
    return n;
  }

  std::vector<int> to_vector() const { return {begin(), end()}; }
  operator std::vector<int>() const { return to_vector(); }  // NOLINT

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (int i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  int dims_[kMaxRank] = {};
  int rank_ = 0;
};

/// Opt-in recycling of tensor data buffers.  While enabled, destroyed
/// tensors park their float buffers on a bounded thread-local free list
/// and constructions reuse any parked buffer whose capacity suffices.
/// Enabling/disabling is global (relaxed atomic); the free lists are
/// per-thread, so recycling never synchronizes.  Buffers parked by a
/// thread are reused by that thread — the inference pattern, where one
/// scheduler thread builds and drops the activation tensors of each
/// forward pass, settles to zero heap traffic after the first pass.
void set_tensor_pool_enabled(bool on);
bool tensor_pool_enabled();

struct TensorPoolStats {
  std::size_t hits = 0;     ///< constructions served from the free list
  std::size_t misses = 0;   ///< constructions that hit the heap
  std::size_t parked = 0;   ///< buffers currently on this thread's list
  std::size_t dropped = 0;  ///< buffers freed because the list was full
};
/// Calling thread's pool statistics (zero when never used).
TensorPoolStats tensor_pool_stats();
/// Frees every buffer parked on the calling thread's list.
void tensor_pool_clear();

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  ~Tensor();
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept;

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  /// Gaussian init, used by layers for weight initialization.
  static Tensor randn(Shape shape, Rng& rng, double stddev);
  static Tensor from_vector(Shape shape, std::vector<float> data);

  int rank() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(int i);
  float& at(int i, int j);
  float& at(int i, int j, int k);
  float& at(int i, int j, int k, int l);
  float at(int i) const;
  float at(int i, int j) const;
  float at(int i, int j, int k) const;
  float at(int i, int j, int k, int l) const;

  /// Same data, new shape (element count must match).
  Tensor reshaped(Shape shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha);

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  std::size_t offset(int i, int j) const;
  std::size_t offset(int i, int j, int k) const;
  std::size_t offset(int i, int j, int k, int l) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace mmhand::nn
