#pragma once

// Dense float tensor used by the neural-network stack.
//
// Row-major, up to 4 dimensions in practice ([N, C, H, W] for feature maps,
// [T, F] for sequences).  Geometry stays in double precision elsewhere in
// the library; training runs in float like the paper's GPU implementation.

#include <vector>

#include "mmhand/common/error.hpp"
#include "mmhand/common/rng.hpp"

namespace mmhand::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  /// Gaussian init, used by layers for weight initialization.
  static Tensor randn(std::vector<int> shape, Rng& rng, double stddev);
  static Tensor from_vector(std::vector<int> shape, std::vector<float> data);

  int rank() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  const std::vector<int>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(int i);
  float& at(int i, int j);
  float& at(int i, int j, int k);
  float& at(int i, int j, int k, int l);
  float at(int i) const;
  float at(int i, int j) const;
  float at(int i, int j, int k) const;
  float at(int i, int j, int k, int l) const;

  /// Same data, new shape (element count must match).
  Tensor reshaped(std::vector<int> shape) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha);

  bool same_shape(const Tensor& other) const {
    return shape_ == other.shape_;
  }

 private:
  std::size_t offset(int i, int j) const;
  std::size_t offset(int i, int j, int k) const;
  std::size_t offset(int i, int j, int k, int l) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace mmhand::nn
