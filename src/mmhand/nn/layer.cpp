#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

Tensor Layer::forward_sequences(const Tensor& x, int sequences) {
  MMHAND_CHECK(sequences >= 1 && x.rank() >= 1 &&
                   x.dim(0) % sequences == 0,
               "forward_sequences: dim0 " << x.dim(0)
                                          << " not divisible into "
                                          << sequences << " sequences");
  if (sequences == 1) return forward(x, false);
  const int rows = x.dim(0) / sequences;
  Shape slice_shape = x.shape();
  slice_shape[0] = rows;
  const std::size_t stride = x.numel() / static_cast<std::size_t>(sequences);
  Tensor slice(slice_shape);
  Tensor out;
  std::size_t out_stride = 0;
  for (int b = 0; b < sequences; ++b) {
    const float* src = x.data() + static_cast<std::size_t>(b) * stride;
    for (std::size_t i = 0; i < stride; ++i) slice[i] = src[i];
    Tensor y = forward(slice, false);
    if (b == 0) {
      Shape out_shape = y.shape();
      out_shape[0] *= sequences;
      out = Tensor(out_shape);
      out_stride = y.numel();
    }
    float* dst = out.data() + static_cast<std::size_t>(b) * out_stride;
    for (std::size_t i = 0; i < out_stride; ++i) dst[i] = y[i];
  }
  return out;
}

void zero_grads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

std::size_t parameter_count(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->value.numel();
  return n;
}

void save_parameters(const std::vector<Parameter*>& params,
                     BinaryWriter& w) {
  w.write_u64(params.size());
  for (const Parameter* p : params) {
    w.write_string(p->name);
    std::vector<int> shape = p->value.shape();
    w.write_i32_vector(shape);
    w.write_f32_vector(p->value.vec());
  }
}

void load_parameters(const std::vector<Parameter*>& params,
                     BinaryReader& r) {
  const auto n = r.read_u64();
  MMHAND_CHECK(n == params.size(),
               "checkpoint has " << n << " parameters, model expects "
                                 << params.size());
  for (Parameter* p : params) {
    const std::string name = r.read_string();
    const auto shape = r.read_i32_vector();
    auto values = r.read_f32_vector();
    MMHAND_CHECK(Shape(shape) == p->value.shape(),
                 "parameter '" << name << "' shape mismatch");
    p->value = Tensor::from_vector(shape, std::move(values));
  }
}

}  // namespace mmhand::nn
