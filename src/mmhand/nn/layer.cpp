#include "mmhand/nn/layer.hpp"

namespace mmhand::nn {

void zero_grads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

std::size_t parameter_count(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->value.numel();
  return n;
}

void save_parameters(const std::vector<Parameter*>& params,
                     BinaryWriter& w) {
  w.write_u64(params.size());
  for (const Parameter* p : params) {
    w.write_string(p->name);
    std::vector<int> shape = p->value.shape();
    w.write_i32_vector(shape);
    w.write_f32_vector(p->value.vec());
  }
}

void load_parameters(const std::vector<Parameter*>& params,
                     BinaryReader& r) {
  const auto n = r.read_u64();
  MMHAND_CHECK(n == params.size(),
               "checkpoint has " << n << " parameters, model expects "
                                 << params.size());
  for (Parameter* p : params) {
    const std::string name = r.read_string();
    const auto shape = r.read_i32_vector();
    auto values = r.read_f32_vector();
    MMHAND_CHECK(shape == p->value.shape(),
                 "parameter '" << name << "' shape mismatch");
    p->value = Tensor::from_vector(shape, std::move(values));
  }
}

}  // namespace mmhand::nn
