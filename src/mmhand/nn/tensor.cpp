#include "mmhand/nn/tensor.hpp"

#include <atomic>
#include <utility>

namespace mmhand::nn {

namespace {

std::atomic<bool> g_pool_enabled{false};

/// Bounded per-thread free list of float buffers.  `alive` is tracked
/// through a raw thread_local pointer so releases that race thread
/// teardown (static-duration tensors destroyed after the pool) degrade
/// to plain deallocation instead of touching a dead object.
struct FreeList {
  // Enough slots for every live activation of a pose forward pass plus
  // the serving layer's per-session workspaces; overflow buffers are
  // freed normally (counted in `dropped`).
  static constexpr std::size_t kMaxParked = 512;
  std::vector<std::vector<float>> parked;
  TensorPoolStats stats;
};

thread_local FreeList* t_free_list = nullptr;

FreeList* ensure_free_list() {
  struct Guard {
    FreeList list;
    Guard() { t_free_list = &list; }
    ~Guard() { t_free_list = nullptr; }
  };
  thread_local Guard guard;
  return t_free_list;
}

}  // namespace

void set_tensor_pool_enabled(bool on) {
  g_pool_enabled.store(on, std::memory_order_relaxed);
}

bool tensor_pool_enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

TensorPoolStats tensor_pool_stats() {
  const FreeList* fl = t_free_list;
  if (fl == nullptr) return {};
  TensorPoolStats s = fl->stats;
  s.parked = fl->parked.size();
  return s;
}

void tensor_pool_clear() {
  FreeList* fl = t_free_list;
  if (fl != nullptr) {
    fl->parked.clear();
    fl->parked.shrink_to_fit();
  }
}

namespace detail {

/// Fills `dst` with `n` zeros, reusing a parked buffer when the pool is
/// on.  Audited in scripts/purity_allowlist.json: once the free list
/// holds a buffer of every size a forward pass requests, this touches
/// no heap.
void tensor_pool_acquire(std::vector<float>* dst, std::size_t n) {
  if (tensor_pool_enabled() && dst->capacity() < n) {
    FreeList* fl = ensure_free_list();
    if (fl != nullptr) {
      // Smallest parked buffer that fits, so big buffers stay available
      // for big requests.
      std::size_t best = fl->parked.size();
      for (std::size_t i = 0; i < fl->parked.size(); ++i) {
        const std::size_t cap = fl->parked[i].capacity();
        if (cap < n) continue;
        if (best == fl->parked.size() ||
            cap < fl->parked[best].capacity())
          best = i;
      }
      if (best < fl->parked.size()) {
        *dst = std::move(fl->parked[best]);
        fl->parked[best] = std::move(fl->parked.back());
        fl->parked.pop_back();
        ++fl->stats.hits;
        dst->assign(n, 0.0f);
        return;
      }
      ++fl->stats.misses;
    }
  }
  dst->assign(n, 0.0f);
}

/// Copies `src` into `dst` through the pool (same reuse rules as
/// tensor_pool_acquire).
void tensor_pool_copy(std::vector<float>* dst, const std::vector<float>& src) {
  if (dst == &src) return;
  const std::size_t n = src.size();
  if (tensor_pool_enabled() && dst->capacity() < n) {
    FreeList* fl = ensure_free_list();
    if (fl != nullptr) {
      std::size_t best = fl->parked.size();
      for (std::size_t i = 0; i < fl->parked.size(); ++i) {
        const std::size_t cap = fl->parked[i].capacity();
        if (cap < n) continue;
        if (best == fl->parked.size() ||
            cap < fl->parked[best].capacity())
          best = i;
      }
      if (best < fl->parked.size()) {
        *dst = std::move(fl->parked[best]);
        fl->parked[best] = std::move(fl->parked.back());
        fl->parked.pop_back();
        ++fl->stats.hits;
        dst->assign(src.begin(), src.end());
        return;
      }
      ++fl->stats.misses;
    }
  }
  dst->assign(src.begin(), src.end());
}

/// Parks `buf` on the calling thread's free list (or frees it when the
/// pool is off, the list is full, or the thread is tearing down).
void tensor_pool_release(std::vector<float>* buf) noexcept {
  if (buf->capacity() == 0) return;
  if (!tensor_pool_enabled()) return;  // vector dtor frees as usual
  FreeList* fl = t_free_list;
  if (fl == nullptr) fl = ensure_free_list();
  if (fl == nullptr || fl->parked.size() >= FreeList::kMaxParked) {
    if (fl != nullptr) ++fl->stats.dropped;
    return;
  }
  try {
    fl->parked.push_back(std::move(*buf));
  } catch (...) {
    // push_back allocation failure: drop the buffer instead.
  }
}

}  // namespace detail

Tensor::Tensor(Shape shape) : shape_(shape) {
  detail::tensor_pool_acquire(&data_, shape_.numel());
}

Tensor::~Tensor() { detail::tensor_pool_release(&data_); }

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  detail::tensor_pool_copy(&data_, other.data_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this != &other) {
    shape_ = other.shape_;
    detail::tensor_pool_copy(&data_, other.data_);
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    detail::tensor_pool_release(&data_);
    shape_ = other.shape_;
    data_ = std::move(other.data_);
  }
  return *this;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(shape); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(shape);
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, double stddev) {
  Tensor t(shape);
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> data) {
  MMHAND_CHECK(shape.numel() == data.size(),
               "from_vector: shape/data mismatch");
  Tensor t;
  t.shape_ = shape;
  t.data_ = std::move(data);
  return t;
}

int Tensor::dim(int i) const {
  MMHAND_CHECK(i >= 0 && i < rank(), "tensor dim index " << i);
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::offset(int i, int j) const {
  MMHAND_ASSERT(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1]);
  return static_cast<std::size_t>(i) * shape_[1] + j;
}

std::size_t Tensor::offset(int i, int j, int k) const {
  MMHAND_ASSERT(rank() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2]);
  return (static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::offset(int i, int j, int k, int l) const {
  MMHAND_ASSERT(rank() == 4 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2] && l >= 0 &&
                l < shape_[3]);
  return ((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) *
             shape_[3] +
         l;
}

float& Tensor::at(int i) {
  MMHAND_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float& Tensor::at(int i, int j) { return data_[offset(i, j)]; }
float& Tensor::at(int i, int j, int k) { return data_[offset(i, j, k)]; }
float& Tensor::at(int i, int j, int k, int l) {
  return data_[offset(i, j, k, l)];
}
float Tensor::at(int i) const {
  MMHAND_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(int i, int j) const { return data_[offset(i, j)]; }
float Tensor::at(int i, int j, int k) const {
  return data_[offset(i, j, k)];
}
float Tensor::at(int i, int j, int k, int l) const {
  return data_[offset(i, j, k, l)];
}

Tensor Tensor::reshaped(Shape shape) const {
  MMHAND_CHECK(shape.numel() == numel(), "reshape element count mismatch");
  Tensor t;
  t.shape_ = shape;
  detail::tensor_pool_copy(&t.data_, data_);
  return t;
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::add_(const Tensor& other) {
  MMHAND_CHECK(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  MMHAND_CHECK(same_shape(other), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
  for (auto& v : data_) v *= alpha;
}

}  // namespace mmhand::nn
