#include "mmhand/nn/tensor.hpp"

namespace mmhand::nn {

namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    MMHAND_CHECK(d >= 1, "tensor dimension " << d);
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<int> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, double stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::from_vector(std::vector<int> shape, std::vector<float> data) {
  MMHAND_CHECK(shape_numel(shape) == data.size(),
               "from_vector: shape/data mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

int Tensor::dim(int i) const {
  MMHAND_CHECK(i >= 0 && i < rank(), "tensor dim index " << i);
  return shape_[static_cast<std::size_t>(i)];
}

std::size_t Tensor::offset(int i, int j) const {
  MMHAND_ASSERT(rank() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1]);
  return static_cast<std::size_t>(i) * shape_[1] + j;
}

std::size_t Tensor::offset(int i, int j, int k) const {
  MMHAND_ASSERT(rank() == 3 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2]);
  return (static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::offset(int i, int j, int k, int l) const {
  MMHAND_ASSERT(rank() == 4 && i >= 0 && i < shape_[0] && j >= 0 &&
                j < shape_[1] && k >= 0 && k < shape_[2] && l >= 0 &&
                l < shape_[3]);
  return ((static_cast<std::size_t>(i) * shape_[1] + j) * shape_[2] + k) *
             shape_[3] +
         l;
}

float& Tensor::at(int i) {
  MMHAND_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float& Tensor::at(int i, int j) { return data_[offset(i, j)]; }
float& Tensor::at(int i, int j, int k) { return data_[offset(i, j, k)]; }
float& Tensor::at(int i, int j, int k, int l) {
  return data_[offset(i, j, k, l)];
}
float Tensor::at(int i) const {
  MMHAND_ASSERT(rank() == 1 && i >= 0 && i < shape_[0]);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(int i, int j) const { return data_[offset(i, j)]; }
float Tensor::at(int i, int j, int k) const {
  return data_[offset(i, j, k)];
}
float Tensor::at(int i, int j, int k, int l) const {
  return data_[offset(i, j, k, l)];
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  MMHAND_CHECK(shape_numel(shape) == numel(),
               "reshape element count mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::add_(const Tensor& other) {
  MMHAND_CHECK(same_shape(other), "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy_(float alpha, const Tensor& other) {
  MMHAND_CHECK(same_shape(other), "axpy_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void Tensor::scale_(float alpha) {
  for (auto& v : data_) v *= alpha;
}

}  // namespace mmhand::nn
