#include "mmhand/nn/loss.hpp"

#include <cmath>

namespace mmhand::nn {

LossResult joint_l2_loss(const Tensor& pred, const Tensor& target) {
  MMHAND_CHECK(pred.same_shape(target), "joint_l2_loss shape mismatch");
  MMHAND_CHECK(pred.numel() % 3 == 0, "joint_l2_loss needs (x,y,z) triples");
  LossResult out;
  out.grad = Tensor::zeros(pred.shape());
  const std::size_t joints = pred.numel() / 3;
  for (std::size_t j = 0; j < joints; ++j) {
    const std::size_t b = 3 * j;
    const double dx = pred[b] - target[b];
    const double dy = pred[b + 1] - target[b + 1];
    const double dz = pred[b + 2] - target[b + 2];
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz);
    out.value += dist;
    if (dist > 1e-9) {
      out.grad[b] = static_cast<float>(dx / dist);
      out.grad[b + 1] = static_cast<float>(dy / dist);
      out.grad[b + 2] = static_cast<float>(dz / dist);
    }
  }
  return out;
}

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  MMHAND_CHECK(pred.same_shape(target), "mse_loss shape mismatch");
  LossResult out;
  out.grad = Tensor::zeros(pred.shape());
  const double inv_n = 1.0 / static_cast<double>(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = pred[i] - target[i];
    out.value += d * d * inv_n;
    out.grad[i] = static_cast<float>(2.0 * d * inv_n);
  }
  return out;
}

}  // namespace mmhand::nn
