#include "mmhand/obs/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "mmhand/obs/flight.hpp"

namespace mmhand::obs {

namespace {

/// Effective level as int, or -1 until first resolution.
std::atomic<int> g_level{-1};
std::mutex g_emit_mu;

int parse_level(const char* s) {
  if (std::strcmp(s, "silent") == 0 || std::strcmp(s, "0") == 0) return 0;
  if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "1") == 0) return 1;
  if (std::strcmp(s, "info") == 0 || std::strcmp(s, "2") == 0) return 2;
  if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "3") == 0) return 3;
  return -1;
}

int resolve_level() {
  int level = static_cast<int>(LogLevel::kInfo);
  if (const char* env = std::getenv("MMHAND_LOG_LEVEL");
      env != nullptr && *env) {
    const int parsed = parse_level(env);
    if (parsed >= 0) {
      level = parsed;
    } else {
      std::fprintf(stderr,
                   "[mmhand] warning: unknown MMHAND_LOG_LEVEL '%s' "
                   "(want silent|warn|info|debug)\n",
                   env);
    }
  }
  int expected = -1;
  g_level.compare_exchange_strong(expected, level,
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}

}  // namespace

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) level = resolve_level();
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  // Format into a local buffer first so the lock only covers the write
  // and concurrent lines never interleave.
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (flight_enabled()) detail::flight_note_log(buf);
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::fprintf(stderr, "[mmhand] %s%s\n",
               level == LogLevel::kWarn ? "warning: " : "", buf);
}

}  // namespace mmhand::obs
