#include "mmhand/obs/alloc.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Replacements for the global allocation functions ([new.delete]);
// defining any of them replaces the library versions for the whole
// program.  Every form funnels into malloc/free (aligned forms through
// posix_memalign) so new/delete pairs may mix forms freely, and the
// counters see every path.
//
// Constraints honored here: constant-initialized gate (no static-init
// order hazard: counting works from the first allocation the process
// makes), no locks, no allocation inside the interposer itself, and the
// standard new-handler retry loop on exhaustion.

namespace mmhand::obs {

namespace {

std::atomic<bool> g_track{false};
std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_frees{0};
std::atomic<std::int64_t> g_bytes{0};

inline void note_alloc(std::size_t size) {
  if (!g_track.load(std::memory_order_relaxed)) return;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(static_cast<std::int64_t>(size),
                    std::memory_order_relaxed);
}

inline void note_free(void* p) {
  if (p == nullptr) return;
  if (!g_track.load(std::memory_order_relaxed)) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

/// malloc with the required new-handler retry loop; returns nullptr
/// only when no handler is installed (nothrow callers) — throwing
/// callers turn that into bad_alloc.
void* alloc_loop(std::size_t size) {
  if (size == 0) size = 1;  // unique pointer per [basic.stc.dynamic]
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* aligned_alloc_loop(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);  // posix_memalign min
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align, size) == 0) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

}  // namespace

void set_alloc_tracking(bool on) {
  g_track.store(on, std::memory_order_relaxed);
}

bool alloc_tracking_enabled() {
  return g_track.load(std::memory_order_relaxed);
}

AllocCounts alloc_counts() {
  AllocCounts c;
  c.allocs = g_allocs.load(std::memory_order_relaxed);
  c.frees = g_frees.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

}  // namespace mmhand::obs

namespace {

void* throwing_new(std::size_t size) {
  void* p = mmhand::obs::alloc_loop(size);
  if (p == nullptr) throw std::bad_alloc();
  mmhand::obs::note_alloc(size);
  return p;
}

void* throwing_new(std::size_t size, std::align_val_t align) {
  void* p = mmhand::obs::aligned_alloc_loop(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  mmhand::obs::note_alloc(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return throwing_new(size); }
void* operator new[](std::size_t size) { return throwing_new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return throwing_new(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return throwing_new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = mmhand::obs::alloc_loop(size);
  if (p != nullptr) mmhand::obs::note_alloc(size);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = mmhand::obs::alloc_loop(size);
  if (p != nullptr) mmhand::obs::note_alloc(size);
  return p;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* p = mmhand::obs::aligned_alloc_loop(
      size, static_cast<std::size_t>(align));
  if (p != nullptr) mmhand::obs::note_alloc(size);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  void* p = mmhand::obs::aligned_alloc_loop(
      size, static_cast<std::size_t>(align));
  if (p != nullptr) mmhand::obs::note_alloc(size);
  return p;
}

// All deletes funnel into free(); size/alignment variants forward.
void operator delete(void* p) noexcept {
  mmhand::obs::note_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  mmhand::obs::note_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  operator delete[](p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete[](p);
}
