#pragma once

// Continuous telemetry: a background sampler that snapshots the metrics
// registry (counters, gauges, span histograms) and the fault-injection
// counters every interval, computes *windowed* per-stage latency stats
// (p50/p95/p99 of just that interval, by diffing raw histogram
// buckets), evaluates declarative latency budgets, and streams each
// interval as one JSONL record — optionally mirrored as an OpenMetrics
// text file for scrape-style consumers.  `tools/mmhand_top` tails the
// JSONL stream live.
//
// Enabled with
//
//   MMHAND_TELEMETRY=<interval_ms>[,out=PATH][,om=PATH][,budgets=PATH]
//                    [,ring=N]
//
// or `set_telemetry()`.  Telemetry implies metrics (the sampler windows
// the span histograms, so they must be recording).  The sampler only
// *reads* instrumentation sinks and never touches the data they
// describe, so numeric outputs are bitwise identical with telemetry on
// or off (enforced by tests/test_telemetry.cpp); when telemetry is off
// the obs fast path stays the usual single relaxed mask load.
//
// The last `ring` records are also retained in memory
// (`telemetry_ring_tail`) so tests and in-process consumers need no
// file I/O.  An `interval_ms` of 0 (programmatic only) starts no
// background thread: each `telemetry_sample_now()` call emits exactly
// one interval, which is how tests sample deterministically.

#include <cstdint>
#include <string>
#include <vector>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

/// True when the telemetry sampler is on.  One relaxed atomic load.
inline bool telemetry_enabled() {
  return (detail::mask() & detail::kTelemetryBit) != 0;
}

struct TelemetryConfig {
  /// Sampling period.  0 = manual mode: no background thread; intervals
  /// are emitted only by `telemetry_sample_now()` (tests).
  int interval_ms = 100;
  std::string out_path;          ///< JSONL stream ("" = in-memory only)
  std::string openmetrics_path;  ///< OpenMetrics mirror ("" = off)
  std::string budgets_path;      ///< latency-budget JSON ("" = none)
  int ring_capacity = 512;       ///< records retained in memory
};

/// Parses the `MMHAND_TELEMETRY` grammar (see the file comment).
bool parse_telemetry_spec(const std::string& spec, TelemetryConfig* config,
                          std::string* error);

/// (Re)starts the sampler with `config`.  Implies metrics.  False (with
/// a warning log) on a malformed config; budget/output-file problems
/// degrade gracefully (warning + feature off) instead of failing.
bool set_telemetry(const TelemetryConfig& config);

/// Stops the sampler: emits one final interval, joins the thread, and
/// closes the output.  Idempotent; also runs at process exit.
void stop_telemetry();

/// Forces one interval right now (any thread; serialized with the
/// sampler).  Returns the JSONL record, or "" when telemetry is off.
std::string telemetry_sample_now();

/// Intervals emitted since the sampler (re)started.
std::uint64_t telemetry_intervals();

/// Budget breaches accumulated across all intervals since (re)start.
std::uint64_t telemetry_breach_total();

/// The newest `max_records` JSONL records (oldest first).
std::vector<std::string> telemetry_ring_tail(std::size_t max_records);

namespace detail {
/// Appends one externally-built JSONL record (e.g. a per-frame record
/// from a closing `FrameScope`) to the telemetry stream: the in-memory
/// ring and, when configured, the out= file.  No-op while the sampler
/// is not started.
void telemetry_emit_record(const std::string& line);
}  // namespace detail

}  // namespace mmhand::obs
