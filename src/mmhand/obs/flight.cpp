#include "mmhand/obs/flight.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <mutex>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MMHAND_FLIGHT_POSIX 1
#endif

#include "mmhand/common/clock.hpp"
#include "mmhand/common/realtime.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::obs {

namespace {

// ---- on-disk layout -------------------------------------------------
//
// | FileHeader (64 B) | name table (name_cap x 64 B) |
// | per-ring: RingHeader (64 B) + slots x Record (64 B), max_threads x |
//
// Every block is 64-byte sized and aligned so a record write touches
// one cache line and mmap alignment is automatic.

constexpr std::uint32_t kMagic = 0x52464D4D;  // "MMFR" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxThreads = 64;
constexpr std::uint32_t kNameCap = 256;
constexpr std::size_t kNameBytes = 64;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::uint32_t kNoName = 0xFFFFFFFFu;
constexpr std::uint8_t kKindBegin = 1;
constexpr std::uint8_t kKindEnd = 2;
constexpr std::uint8_t kKindLog = 3;

struct FileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t max_threads;
  std::uint32_t slots_per_thread;
  std::uint32_t name_capacity;
  std::atomic<std::uint32_t> names_used;
  std::uint64_t start_unix_ms;
  std::uint8_t reserved[32];
};
static_assert(sizeof(FileHeader) == kHeaderBytes);

struct RingHeader {
  std::atomic<std::uint64_t> head;  ///< total records ever written
  std::uint8_t reserved[56];
};
static_assert(sizeof(RingHeader) == 64);

struct Record {
  std::atomic<std::uint64_t> seq;  ///< stored last (release); 0 = torn
  std::int64_t t_ns;
  std::uint32_t name_id;
  std::uint8_t kind;
  std::uint8_t reserved;
  std::uint16_t tid;
  char text[40];
};
static_assert(sizeof(Record) == 64);

/// POD mirrors for readers (memcpy out of the mapping / file blob, so
/// torn concurrent writes never alias an atomic object).
struct HeaderView {
  std::uint32_t magic = 0, version = 0, max_threads = 0, slots = 0,
                name_cap = 0, names_used = 0;
  std::uint64_t start_unix_ms = 0;
};

struct RecordView {
  std::uint64_t seq = 0;
  std::int64_t t_ns = 0;
  std::uint32_t name_id = 0;
  std::uint8_t kind = 0;
  std::uint8_t reserved = 0;
  std::uint16_t tid = 0;
  char text[40] = {};
};

HeaderView read_header(const unsigned char* b) {
  HeaderView v;
  std::memcpy(&v.magic, b + 0, 4);
  std::memcpy(&v.version, b + 4, 4);
  std::memcpy(&v.max_threads, b + 8, 4);
  std::memcpy(&v.slots, b + 12, 4);
  std::memcpy(&v.name_cap, b + 16, 4);
  std::memcpy(&v.names_used, b + 20, 4);
  std::memcpy(&v.start_unix_ms, b + 24, 8);
  return v;
}

std::size_t names_offset() { return kHeaderBytes; }

std::size_t rings_offset(std::uint32_t name_cap) {
  return kHeaderBytes + static_cast<std::size_t>(name_cap) * kNameBytes;
}

std::size_t ring_stride(std::uint32_t slots) {
  return sizeof(RingHeader) + static_cast<std::size_t>(slots) * sizeof(Record);
}

std::size_t total_size(std::uint32_t max_threads, std::uint32_t slots,
                       std::uint32_t name_cap) {
  return rings_offset(name_cap) + max_threads * ring_stride(slots);
}

/// The active mapping.  Leaked by design: a racing writer may hold the
/// pointer across stop_flight/set_flight, so mappings are never freed
/// (a process remaps at most a handful of times).
struct Mapping {
  unsigned char* base = nullptr;
  std::uint32_t max_threads = 0;
  std::uint32_t slots = 0;
  std::uint32_t name_cap = 0;
  char dump_path[1024] = {};
};

std::atomic<Mapping*> g_mapping{nullptr};
std::atomic<std::uint64_t> g_generation{0};
std::mutex g_mu;       // set_flight + name interning
std::string g_path;    // guarded by g_mu

RingHeader* ring_header(const Mapping* m, std::uint32_t ring) {
  return reinterpret_cast<RingHeader*>(m->base + rings_offset(m->name_cap) +
                                       ring * ring_stride(m->slots));
}

Record* record_slot(const Mapping* m, std::uint32_t ring, std::uint64_t i) {
  return reinterpret_cast<Record*>(
      m->base + rings_offset(m->name_cap) + ring * ring_stride(m->slots) +
      sizeof(RingHeader) + static_cast<std::size_t>(i) * sizeof(Record));
}

char* name_slot(const Mapping* m, std::uint32_t id) {
  return reinterpret_cast<char*>(m->base + names_offset() + id * kNameBytes);
}

MMHAND_REALTIME
void write_record(std::uint8_t kind, std::uint32_t name_id, const char* text,
                  std::int64_t t_ns) {
  Mapping* m = g_mapping.load(std::memory_order_acquire);
  if (m == nullptr) return;
  const unsigned tid = detail::thread_id();
  const std::uint32_t ring = tid % m->max_threads;
  RingHeader* rh = ring_header(m, ring);
  const std::uint64_t seq = rh->head.fetch_add(1, std::memory_order_relaxed) + 1;
  Record* rec = record_slot(m, ring, (seq - 1) % m->slots);
  rec->seq.store(0, std::memory_order_release);
  rec->t_ns = t_ns;
  rec->name_id = name_id;
  rec->kind = kind;
  rec->tid = static_cast<std::uint16_t>(tid & 0xFFFF);
  if (text != nullptr)
    std::snprintf(rec->text, sizeof(rec->text), "%s", text);
  else
    rec->text[0] = '\0';
  rec->seq.store(seq, std::memory_order_release);
}

/// Registers `name` in the mapped name table (rare: once per call site
/// per mapping); returns its id or kNoName when the table is full.
std::uint32_t intern_name(Mapping* m, const char* name) {
  FileHeader* h = reinterpret_cast<FileHeader*>(m->base);
  const std::uint32_t used =
      std::min(h->names_used.load(std::memory_order_acquire), m->name_cap);
  for (std::uint32_t i = 0; i < used; ++i)
    if (std::strncmp(name_slot(m, i), name, kNameBytes - 1) == 0) return i;
  if (used >= m->name_cap) return kNoName;
  std::snprintf(name_slot(m, used), kNameBytes, "%s", name);
  h->names_used.store(used + 1, std::memory_order_release);
  return used;
}

/// Cached name id of a span site; the token carries the mapping
/// generation so remapping invalidates stale ids without touching the
/// sites.  Steady-state cost: two relaxed/acquire loads, no lock.
std::uint32_t site_name_id(SpanSite& site) {
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (gen == 0) return kNoName;
  const std::uint64_t tok = site.flight_token().load(std::memory_order_relaxed);
  if ((tok >> 32) == gen) return static_cast<std::uint32_t>(tok);
  Mapping* m = g_mapping.load(std::memory_order_acquire);
  if (m == nullptr) return kNoName;
  std::uint32_t id;
  {
    std::lock_guard<std::mutex> lk(g_mu);
    id = intern_name(m, site.name());
  }
  site.flight_token().store((gen << 32) | id, std::memory_order_relaxed);
  return id;
}

// ---- rendering ------------------------------------------------------

/// Line sink usable from a signal handler (fd mode: write(2) only, no
/// allocation) or from normal code (string mode).
struct RenderSink {
  int fd = -1;
  std::string* out = nullptr;

  void emit(const char* line) {
    if (out != nullptr) {
      *out += line;
    } else if (fd >= 0) {
#if defined(MMHAND_FLIGHT_POSIX)
      const std::size_t n = std::strlen(line);
      std::size_t done = 0;
      while (done < n) {
        const ssize_t w = ::write(fd, line + done, n - done);
        if (w <= 0) break;
        done += static_cast<std::size_t>(w);
      }
#endif
    }
  }
};

/// Renders the ring image at `base` (live mapping or file blob).  Only
/// snprintf + sink.emit — safe from the crash handlers in fd mode.
bool render_rings(const unsigned char* base, std::size_t size,
                  RenderSink& sink) {
  if (size < kHeaderBytes) return false;
  const HeaderView h = read_header(base);
  if (h.magic != kMagic || h.version != kVersion) return false;
  if (h.max_threads == 0 || h.max_threads > 1024 || h.slots == 0 ||
      h.slots > (1u << 20) || h.name_cap == 0 || h.name_cap > 4096)
    return false;
  if (total_size(h.max_threads, h.slots, h.name_cap) > size) return false;

  char line[320];
  std::snprintf(line, sizeof(line),
                "flight ring: %u thread rings x %u slots, %u names, "
                "started unix_ms=%llu\n",
                h.max_threads, h.slots,
                std::min(h.names_used, h.name_cap),
                static_cast<unsigned long long>(h.start_unix_ms));
  sink.emit(line);

  const auto name_of = [&](std::uint32_t id, char* buf, std::size_t cap) {
    if (id >= std::min(h.names_used, h.name_cap)) {
      std::snprintf(buf, cap, "?");
      return;
    }
    const char* src = reinterpret_cast<const char*>(base + names_offset() +
                                                    id * kNameBytes);
    std::snprintf(buf, cap, "%.*s", static_cast<int>(kNameBytes - 1), src);
  };

  constexpr int kMaxNest = 64;
  for (std::uint32_t r = 0; r < h.max_threads; ++r) {
    const unsigned char* ring = base + rings_offset(h.name_cap) +
                                r * ring_stride(h.slots);
    std::uint64_t head = 0;
    std::memcpy(&head, ring, 8);
    if (head == 0) continue;
    const std::uint64_t count = std::min<std::uint64_t>(head, h.slots);
    std::snprintf(line, sizeof(line),
                  "thread ring %u: %llu events total, last %llu:\n", r,
                  static_cast<unsigned long long>(head),
                  static_cast<unsigned long long>(count));
    sink.emit(line);

    std::uint32_t open_name[kMaxNest];
    std::int64_t open_t[kMaxNest];
    int depth = 0;
    char name[kNameBytes];
    for (std::uint64_t seq = head - count + 1; seq <= head; ++seq) {
      RecordView rec;
      std::memcpy(&rec, ring + sizeof(RingHeader) +
                            static_cast<std::size_t>((seq - 1) % h.slots) *
                                sizeof(Record),
                  sizeof(RecordView));
      if (rec.seq != seq) {
        sink.emit("  (torn record)\n");
        continue;
      }
      const double t_ms = static_cast<double>(rec.t_ns) / 1e6;
      if (rec.kind == kKindBegin) {
        name_of(rec.name_id, name, sizeof(name));
        std::snprintf(line, sizeof(line),
                      "  [%12.3f ms] tid %u begin %s\n", t_ms, rec.tid,
                      name);
        sink.emit(line);
        if (depth < kMaxNest) {
          open_name[depth] = rec.name_id;
          open_t[depth] = rec.t_ns;
        }
        ++depth;
      } else if (rec.kind == kKindEnd) {
        name_of(rec.name_id, name, sizeof(name));
        std::snprintf(line, sizeof(line),
                      "  [%12.3f ms] tid %u end   %s\n", t_ms, rec.tid,
                      name);
        sink.emit(line);
        if (depth > 0) --depth;
      } else if (rec.kind == kKindLog) {
        rec.text[sizeof(rec.text) - 1] = '\0';
        std::snprintf(line, sizeof(line),
                      "  [%12.3f ms] tid %u log   %s\n", t_ms, rec.tid,
                      rec.text);
        sink.emit(line);
      } else {
        sink.emit("  (unknown record kind)\n");
      }
    }
    // Whatever was begun but never ended inside the retained window was
    // open when recording stopped — the spans the process died inside.
    for (int d = std::min(depth, kMaxNest) - 1; d >= 0; --d) {
      name_of(open_name[d], name, sizeof(name));
      std::snprintf(line, sizeof(line),
                    "  in-flight: %s (begun %.3f ms)\n", name,
                    static_cast<double>(open_t[d]) / 1e6);
      sink.emit(line);
    }
  }
  sink.emit("end of flight dump\n");
  return true;
}

/// Appends a rendered dump to the configured dump file.  Async-signal
/// tolerable: open/write/close plus snprintf formatting only.
bool dump_to_file(const char* reason) {
#if defined(MMHAND_FLIGHT_POSIX)
  Mapping* m = g_mapping.load(std::memory_order_acquire);
  if (m == nullptr) return false;
  const int fd = ::open(m->dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  RenderSink sink;
  sink.fd = fd;
  char line[160];
  std::snprintf(line, sizeof(line), "=== mmhand flight dump: %s ===\n",
                reason);
  sink.emit(line);
  const bool ok =
      render_rings(m->base, total_size(m->max_threads, m->slots, m->name_cap),
                   sink);
  ::close(fd);
  return ok;
#else
  (void)reason;
  return false;
#endif
}

#if defined(MMHAND_FLIGHT_POSIX)
void crash_signal_handler(int sig) {
  char reason[32];
  std::snprintf(reason, sizeof(reason), "signal %d", sig);
  dump_to_file(reason);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}
#endif

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void flight_terminate_handler() {
  dump_to_file("std::terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void install_handlers_once() {
  static std::once_flag once;
  std::call_once(once, [] {
#if defined(MMHAND_FLIGHT_POSIX)
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
      ::sigaction(sig, &sa, nullptr);
#endif
    g_prev_terminate = std::set_terminate(&flight_terminate_handler);
  });
}

}  // namespace

bool parse_flight_spec(const std::string& spec, FlightConfig* config,
                       std::string* error) {
  FlightConfig out;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (first) {
      out.path = token;
      first = false;
    } else if (token.rfind("slots=", 0) == 0) {
      char* end = nullptr;
      const long v = std::strtol(token.c_str() + 6, &end, 10);
      if (end == nullptr || *end != '\0' || v < 16 || v > (1 << 16)) {
        if (error != nullptr)
          *error = "flight spec: slots must be an integer in [16, 65536]";
        return false;
      }
      out.slots_per_thread = static_cast<int>(v);
    } else if (!token.empty()) {
      if (error != nullptr)
        *error = "flight spec: unknown key '" + token +
                 "' (grammar: <path>[,slots=N])";
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.path.empty()) {
    if (error != nullptr) *error = "flight spec: empty ring path";
    return false;
  }
  *config = out;
  return true;
}

bool set_flight(const FlightConfig& config) {
  if (config.path.empty()) {
    MMHAND_WARN("flight: empty ring path");
    return false;
  }
#if !defined(MMHAND_FLIGHT_POSIX)
  MMHAND_WARN("flight recorder needs POSIX mmap; disabled on this platform");
  return false;
#else
  const std::uint32_t slots = static_cast<std::uint32_t>(
      std::clamp(config.slots_per_thread, 16, 1 << 16));
  const std::size_t size = total_size(kMaxThreads, slots, kNameCap);

  std::lock_guard<std::mutex> lk(g_mu);
  const int fd =
      ::open(config.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    MMHAND_WARN("flight: cannot open ring file %s", config.path.c_str());
    return false;
  }
  // Reuse a compatible existing ring (events append across restarts);
  // anything else — wrong geometry, stale version, foreign file — is
  // re-initialized from scratch.
  bool reuse = false;
  struct stat st;
  std::memset(&st, 0, sizeof(st));
  if (::fstat(fd, &st) == 0 &&
      static_cast<std::size_t>(st.st_size) == size) {
    unsigned char probe[kHeaderBytes];
    if (::pread(fd, probe, sizeof(probe), 0) ==
        static_cast<ssize_t>(sizeof(probe))) {
      const HeaderView v = read_header(probe);
      reuse = v.magic == kMagic && v.version == kVersion &&
              v.max_threads == kMaxThreads && v.slots == slots &&
              v.name_cap == kNameCap;
    }
  }
  if (!reuse && (::ftruncate(fd, 0) != 0 ||
                 ::ftruncate(fd, static_cast<off_t>(size)) != 0)) {
    MMHAND_WARN("flight: cannot size ring file %s", config.path.c_str());
    ::close(fd);
    return false;
  }
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    MMHAND_WARN("flight: cannot mmap ring file %s", config.path.c_str());
    return false;
  }

  auto* m = new Mapping;
  m->base = static_cast<unsigned char*>(mem);
  m->max_threads = kMaxThreads;
  m->slots = slots;
  m->name_cap = kNameCap;
  std::snprintf(m->dump_path, sizeof(m->dump_path), "%s.dump.txt",
                config.path.c_str());
  if (!reuse) {
    FileHeader* h = reinterpret_cast<FileHeader*>(m->base);
    h->magic = kMagic;
    h->version = kVersion;
    h->max_threads = kMaxThreads;
    h->slots_per_thread = slots;
    h->name_capacity = kNameCap;
    h->names_used.store(0, std::memory_order_relaxed);
    h->start_unix_ms = static_cast<std::uint64_t>(unix_time_ms());
  }
  g_path = config.path;
  g_mapping.store(m, std::memory_order_release);
  g_generation.fetch_add(1, std::memory_order_acq_rel);
  install_handlers_once();
  detail::set_mask_bit(detail::kFlightBit, true);
  return true;
#endif
}

void stop_flight() {
  detail::set_mask_bit(detail::kFlightBit, false);
  // The mapping stays alive (see Mapping): clearing the mask bit stops
  // new events at the span gate; the ring file keeps its contents.
  std::lock_guard<std::mutex> lk(g_mu);
  g_path.clear();
}

std::string flight_path() {
  if (!flight_enabled()) return "";
  std::lock_guard<std::mutex> lk(g_mu);
  return g_path;
}

bool flight_dump(const char* reason) { return dump_to_file(reason); }

std::string flight_render_file(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "flight: cannot read " + path;
    return "";
  }
  std::vector<unsigned char> blob((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  std::string out;
  RenderSink sink;
  sink.out = &out;
  if (!render_rings(blob.data(), blob.size(), sink)) {
    if (error != nullptr)
      *error = "flight: " + path + " is not a valid flight ring";
    return "";
  }
  return out;
}

namespace detail {

MMHAND_REALTIME
void flight_span_event(SpanSite& site, bool begin, std::int64_t t_ns) {
  write_record(begin ? kKindBegin : kKindEnd, site_name_id(site), nullptr,
               t_ns);
}

MMHAND_REALTIME
void flight_note_log(const char* line) {
  write_record(kKindLog, kNoName, line, now_ns());
}

void flight_on_mask_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    FlightConfig config;
    std::string error;
    if (!parse_flight_spec(flight_spec_raw(), &config, &error)) {
      MMHAND_WARN("MMHAND_FLIGHT: %s", error.c_str());
      set_mask_bit(kFlightBit, false);
      return;
    }
    if (!set_flight(config)) set_mask_bit(kFlightBit, false);
  });
}

}  // namespace detail

}  // namespace mmhand::obs
