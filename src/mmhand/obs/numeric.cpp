#include "mmhand/obs/numeric.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "mmhand/common/error.hpp"
#include "mmhand/obs/flight.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/runlog.hpp"

namespace mmhand::obs {

namespace {

/// -1 until resolved; afterwards holds a NumericCheckMode value.
std::atomic<int>& mode_atomic() {
  static std::atomic<int> mode{-1};
  return mode;
}

int resolve_mode() {
  static std::once_flag once;
  std::call_once(once, [] {
    int m = static_cast<int>(NumericCheckMode::kOff);
    if (const char* e = std::getenv("MMHAND_NUMERIC_CHECK");
        e != nullptr && *e) {
      if (std::strcmp(e, "warn") == 0 || std::strcmp(e, "1") == 0)
        m = static_cast<int>(NumericCheckMode::kWarn);
      else if (std::strcmp(e, "fatal") == 0 || std::strcmp(e, "2") == 0)
        m = static_cast<int>(NumericCheckMode::kFatal);
      else if (std::strcmp(e, "off") != 0 && std::strcmp(e, "0") != 0)
        MMHAND_WARN("MMHAND_NUMERIC_CHECK=%s not understood; expected "
                    "off|warn|fatal — checking stays off",
                    e);
    }
    int expected = -1;
    mode_atomic().compare_exchange_strong(expected, m,
                                          std::memory_order_relaxed);
  });
  return mode_atomic().load(std::memory_order_relaxed);
}

std::atomic<std::int64_t> g_anomalies{0};

}  // namespace

NumericCheckMode numeric_check_mode() {
  int m = mode_atomic().load(std::memory_order_relaxed);
  if (m < 0) m = resolve_mode();
  return static_cast<NumericCheckMode>(m);
}

void set_numeric_check_mode(NumericCheckMode mode) {
  (void)resolve_mode();  // consume the environment first
  mode_atomic().store(static_cast<int>(mode), std::memory_order_relaxed);
}

bool numeric_check_enabled() {
  return numeric_check_mode() != NumericCheckMode::kOff;
}

void report_numeric_anomaly(const char* site, const char* what,
                            const std::string& detail) {
  const NumericCheckMode mode = numeric_check_mode();
  if (mode == NumericCheckMode::kOff) return;
  g_anomalies.fetch_add(1, std::memory_order_relaxed);
  // Anomalies are rare by definition; always count them so a later
  // metrics snapshot (or numeric_anomaly_count()) reflects the run even
  // when metrics were enabled after the fact.
  counter("obs/numeric.anomalies").add(1);
  counter(std::string("obs/numeric.") + what).add(1);
  if (runlog_enabled()) {
    RunRecord rec("anomaly");
    rec.field("site", site).field("what", what).field("detail", detail);
    append_run_record(rec);
  }
  MMHAND_WARN("numeric anomaly at %s: %s (%s)", site, what, detail.c_str());
  if (mode == NumericCheckMode::kFatal) {
    // Capture the final moments before the fatal path unwinds: the
    // flight dump shows which spans were in flight around the anomaly.
    if (flight_enabled()) flight_dump("numeric-fatal");
    MMHAND_CHECK(false, "numeric anomaly at " << site << ": " << what
                                              << " (" << detail << ")");
  }
}

bool check_finite_scalar(const char* site, double v,
                         const std::string& detail) {
  if (std::isfinite(v)) return true;
  report_numeric_anomaly(site, std::isnan(v) ? "nan" : "inf", detail);
  return false;
}

std::int64_t numeric_anomaly_count() {
  return g_anomalies.load(std::memory_order_relaxed);
}

}  // namespace mmhand::obs
