#pragma once

// Hardware-counter (PMU) span profiling via `perf_event_open`.
//
// When `MMHAND_PMU` is set (any non-empty value other than `0`/`off`),
// every `MMHAND_SPAN` additionally reads a per-thread group of five
// hardware counters — cycles, instructions, cache references, cache
// misses, branch misses — at scope entry and exit, and accumulates the
// deltas into per-stage counters in the metrics registry:
//
//   pmu/<stage>.cycles, pmu/<stage>.instructions,
//   pmu/<stage>.cache_refs, pmu/<stage>.cache_misses,
//   pmu/<stage>.branch_misses
//
// so the usual sinks (metrics snapshot, telemetry, OpenMetrics) carry
// them and `mmhand_report --roofline` can derive IPC and cache behavior
// per stage.  MMHAND_PMU implies MMHAND_METRICS-style recording.
//
// `perf_event_open` is frequently unavailable — containers without
// CAP_PERFMON, `kernel.perf_event_paranoid > 2`, seccomp filters,
// non-Linux hosts.  The first failed open (per process) degrades the
// whole layer to clock-only: spans keep their wall-clock histograms,
// `pmu_available()` turns false, a single warning is logged, and no
// further syscalls are attempted.  Off or degraded, the pipeline's
// numeric outputs are bitwise identical to a fully-off run (enforced by
// tests/test_prof.cpp); off, the cost is the span's usual single
// relaxed mask load.

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

/// True when PMU span profiling is requested.  One relaxed atomic load.
inline bool pmu_enabled() {
  return (detail::mask() & detail::kPmuBit) != 0;
}

/// Runtime override; wins over the environment.  Enabling also enables
/// metrics (the aggregates live in the metrics registry).
void set_pmu_enabled(bool on);

/// True when the calling thread's counter group opened successfully (or
/// has not been attempted yet and no other thread failed).  Turns false
/// process-wide after the first failed `perf_event_open`.
bool pmu_available();

/// Number of events per group and their short names, in reading order:
/// cycles, instructions, cache_refs, cache_misses, branch_misses.
inline constexpr int kPmuEvents = 5;
const char* pmu_event_name(int index);

}  // namespace mmhand::obs
