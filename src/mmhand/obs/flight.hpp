#pragma once

// Crash flight recorder: a file-backed, lock-free ring of the last N
// span begin/end events and log lines per thread, so any death — a
// SIGSEGV, an abort(), a numeric-watchdog fatal, even an uncatchable
// SIGKILL under the fault harness — leaves a reconstructable record of
// the process's final moments.
//
// The ring lives in an mmap(MAP_SHARED) file: every event lands in the
// page cache immediately, which the kernel flushes regardless of how
// the process dies.  Catchable terminations additionally append a
// human-readable dump to `<ring>.dump.txt` from a signal/terminate
// handler; for SIGKILL the binary ring itself is the artifact, rendered
// after the fact by `mmhand_top --flight` or `flight_render_file`.
//
// Enabled with `MMHAND_FLIGHT=<path>[,slots=N]` or `set_flight()`.
// Recording an event is a handful of relaxed/release stores into the
// mapping — no lock, no allocation — and when the recorder is off a
// span pays only the obs layer's usual single relaxed mask load.
// Events never touch the data they describe, so numeric outputs are
// bitwise identical with the recorder on or off.

#include <string>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

/// True when flight recording is on.  One relaxed atomic load.
inline bool flight_enabled() {
  return (detail::mask() & detail::kFlightBit) != 0;
}

struct FlightConfig {
  std::string path;            ///< ring file (binary, mmap-backed)
  int slots_per_thread = 256;  ///< events retained per thread ring
};

/// Parses the `MMHAND_FLIGHT` grammar: `<path>[,slots=N]`.
bool parse_flight_spec(const std::string& spec, FlightConfig* config,
                       std::string* error);

/// Maps (creating or reusing) the ring file, installs the crash
/// handlers, and enables recording.  False (with a warning log) when
/// the file cannot be created or mapped.
bool set_flight(const FlightConfig& config);

/// Disables recording.  The mapping stays alive (writers may still be
/// in flight) but no new events are recorded; the file keeps whatever
/// it held.
void stop_flight();

/// Ring file path of the active recorder ("" when off).
std::string flight_path();

/// Appends a rendered dump (with `reason`) to `<ring>.dump.txt`.
/// Called by the crash handlers and the numeric watchdog's fatal path;
/// safe to call manually.  False when no recorder is active.
bool flight_dump(const char* reason);

/// Renders a ring file as human-readable text: per-thread chronological
/// events plus an `in-flight:` line for every span begun but not ended
/// (the spans that were open when the process died).  On a malformed
/// file returns "" and sets `*error`.
std::string flight_render_file(const std::string& path, std::string* error);

namespace detail {
/// Records one truncated log line (wired into obs::logf).
void flight_note_log(const char* line);
}  // namespace detail

}  // namespace mmhand::obs
