#include "mmhand/obs/runlog.hpp"

#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>

#include "mmhand/common/io_safe.hpp"
#include "mmhand/obs/log.hpp"

namespace mmhand::obs {

namespace {

/// Serializes appends and guards the lazily-opened sink.  The torn-tail
/// repair and the append/flush discipline live in io_safe::LineWriter
/// (shared with the telemetry stream).
struct Sink {
  std::mutex mu;
  io_safe::LineWriter writer;    // guarded by mu
  std::deque<std::string> tail;  // recent record lines, newest last
};

constexpr std::size_t kTailCap = 256;

Sink& sink() {
  static Sink s;
  return s;
}

}  // namespace

namespace detail {

std::string json_number(double v) {
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Inf\"" : "\"-Inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace detail

void set_run_log_enabled(bool on) {
  detail::set_mask_bit(detail::kRunLogBit, on);
}

void set_run_log_path(const std::string& path) {
  detail::set_run_log_path_raw(path);
  detail::set_mask_bit(detail::kRunLogBit, true);
}

std::string run_log_path() { return detail::run_log_path_raw(); }

RunRecord::RunRecord(const char* kind) {
  os_ << '{';
  field("kind", kind);
  field("t_ms", static_cast<double>(detail::now_ns()) / 1e6);
}

void RunRecord::key(const char* k) {
  if (!first_) os_ << ", ";
  first_ = false;
  os_ << '"' << detail::json_escape(k) << "\": ";
}

RunRecord& RunRecord::field(const char* k, double v) {
  key(k);
  os_ << detail::json_number(v);
  return *this;
}

RunRecord& RunRecord::field(const char* k, std::int64_t v) {
  key(k);
  os_ << v;
  return *this;
}

RunRecord& RunRecord::field(const char* k, bool v) {
  key(k);
  os_ << (v ? "true" : "false");
  return *this;
}

RunRecord& RunRecord::field(const char* k, const char* v) {
  key(k);
  os_ << '"' << detail::json_escape(v) << '"';
  return *this;
}

RunRecord& RunRecord::raw(const char* k, const std::string& json) {
  key(k);
  os_ << json;
  return *this;
}

std::string RunRecord::json() const { return os_.str() + "}"; }

void append_run_record(const RunRecord& record) {
  if (!runlog_enabled()) return;
  const std::string line = record.json();
  const std::string path = detail::run_log_path_raw();
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  s.tail.push_back(line);
  if (s.tail.size() > kTailCap) s.tail.pop_front();
  if (path.empty()) return;
  if (!s.writer.is_open() || s.writer.path() != path) {
    const std::uint64_t torn = io_safe::repair_torn_line_tail(path);
    if (torn > 0)
      MMHAND_WARN("run log %s had a torn final record; truncated %llu bytes",
                  path.c_str(), static_cast<unsigned long long>(torn));
    if (!s.writer.open(path)) {
      MMHAND_WARN("cannot append run log to %s", path.c_str());
      return;
    }
  }
  s.writer.append(line);
}

std::string run_log_tail(std::size_t max_records) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  std::string out;
  std::size_t start =
      s.tail.size() > max_records ? s.tail.size() - max_records : 0;
  for (std::size_t i = start; i < s.tail.size(); ++i) {
    out += s.tail[i];
    out += '\n';
  }
  return out;
}

void reset_run_log() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  s.tail.clear();
  s.writer.close();
}

}  // namespace mmhand::obs
