#include "mmhand/obs/runlog.hpp"

#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "mmhand/obs/log.hpp"

namespace mmhand::obs {

namespace {

/// Serializes appends and guards the lazily-opened sink.
struct Sink {
  std::mutex mu;
  std::FILE* file = nullptr;     // guarded by mu
  std::string open_path;         // path `file` was opened with
  std::deque<std::string> tail;  // recent record lines, newest last
};

constexpr std::size_t kTailCap = 256;

Sink& sink() {
  static Sink s;
  return s;
}

/// Repairs a torn tail before appending: a crash mid-fwrite leaves a
/// partial final line, and every later record on that line would be
/// unparseable JSONL.  Truncate back to the last complete line (best
/// effort — the log is an append-only diagnostic, losing the torn
/// record is the correct outcome).
void repair_torn_tail(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  // A record line is far below 64 KiB; scanning one window from the end
  // finds the last newline of any log this writer produced.
  constexpr std::uintmax_t kWindow = 64 * 1024;
  const std::uintmax_t start = size > kWindow ? size - kWindow : 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  in.seekg(static_cast<std::streamoff>(start));
  std::string window(static_cast<std::size_t>(size - start), '\0');
  in.read(window.data(), static_cast<std::streamsize>(window.size()));
  if (static_cast<std::uintmax_t>(in.gcount()) != size - start) return;
  in.close();
  const std::size_t last_nl = window.rfind('\n');
  if (last_nl == window.size() - 1) return;  // tail is complete
  // No newline anywhere in the window: with start > 0 the window began
  // mid-file and the last line boundary is unknown — leave it alone.
  if (last_nl == std::string::npos && start > 0) return;
  const std::uintmax_t keep =
      last_nl == std::string::npos ? 0 : start + last_nl + 1;
  if (keep == size) return;
  std::filesystem::resize_file(path, keep, ec);
  if (!ec)
    MMHAND_WARN("run log %s had a torn final record; truncated %llu bytes",
                path.c_str(),
                static_cast<unsigned long long>(size - keep));
}

}  // namespace

namespace detail {

std::string json_number(double v) {
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0 ? "\"Inf\"" : "\"-Inf\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace detail

void set_run_log_enabled(bool on) {
  detail::set_mask_bit(detail::kRunLogBit, on);
}

void set_run_log_path(const std::string& path) {
  detail::set_run_log_path_raw(path);
  detail::set_mask_bit(detail::kRunLogBit, true);
}

std::string run_log_path() { return detail::run_log_path_raw(); }

RunRecord::RunRecord(const char* kind) {
  os_ << '{';
  field("kind", kind);
  field("t_ms", static_cast<double>(detail::now_ns()) / 1e6);
}

void RunRecord::key(const char* k) {
  if (!first_) os_ << ", ";
  first_ = false;
  os_ << '"' << detail::json_escape(k) << "\": ";
}

RunRecord& RunRecord::field(const char* k, double v) {
  key(k);
  os_ << detail::json_number(v);
  return *this;
}

RunRecord& RunRecord::field(const char* k, std::int64_t v) {
  key(k);
  os_ << v;
  return *this;
}

RunRecord& RunRecord::field(const char* k, bool v) {
  key(k);
  os_ << (v ? "true" : "false");
  return *this;
}

RunRecord& RunRecord::field(const char* k, const char* v) {
  key(k);
  os_ << '"' << detail::json_escape(v) << '"';
  return *this;
}

RunRecord& RunRecord::raw(const char* k, const std::string& json) {
  key(k);
  os_ << json;
  return *this;
}

std::string RunRecord::json() const { return os_.str() + "}"; }

void append_run_record(const RunRecord& record) {
  if (!runlog_enabled()) return;
  const std::string line = record.json();
  const std::string path = detail::run_log_path_raw();
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  s.tail.push_back(line);
  if (s.tail.size() > kTailCap) s.tail.pop_front();
  if (path.empty()) return;
  if (s.file != nullptr && s.open_path != path) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  if (s.file == nullptr) {
    repair_torn_tail(path);
    s.file = std::fopen(path.c_str(), "a");
    if (s.file == nullptr) {
      MMHAND_WARN("cannot append run log to %s", path.c_str());
      return;
    }
    s.open_path = path;
  }
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fputc('\n', s.file);
  std::fflush(s.file);
}

std::string run_log_tail(std::size_t max_records) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  std::string out;
  std::size_t start =
      s.tail.size() > max_records ? s.tail.size() - max_records : 0;
  for (std::size_t i = start; i < s.tail.size(); ++i) {
    out += s.tail[i];
    out += '\n';
  }
  return out;
}

void reset_run_log() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lk(s.mu);
  s.tail.clear();
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  s.open_path.clear();
}

}  // namespace mmhand::obs
