#pragma once

// Scoped spans emitting Chrome trace-event JSON ("X" complete events,
// viewable in chrome://tracing or https://ui.perfetto.dev).
//
// Usage at a stage boundary:
//
//   { MMHAND_SPAN("radar/range_fft"); ...stage... }
//
// The macro creates a function-local static `SpanSite` (one registry
// resolution per call site, ever) and a scoped `Span`.  When both
// tracing and metrics are off, constructing a Span costs one relaxed
// atomic load and a branch — no clock read, no allocation, no
// formatting — so instrumentation can stay in release hot paths.  When
// tracing is on the span is appended to a per-thread buffer; when
// metrics are on its duration (microseconds) feeds the histogram of the
// same name.  Spans never touch the data they time, so numeric outputs
// are bitwise identical with observability on or off.
//
// Tracing resolves lazily on first use from `MMHAND_TRACE=<path>` (the
// file is written by an atexit hook and by explicit `write_trace()`
// calls) and can be forced at runtime with `set_tracing_enabled()` +
// `set_trace_path()`.

#include <atomic>
#include <cstdint>
#include <string>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

class Histogram;

/// True when span trace capture is on.  One relaxed atomic load.
inline bool tracing_enabled() {
  return (detail::mask() & detail::kTraceBit) != 0;
}

/// True when spans must be timed at all (tracing or metrics).
inline bool timing_enabled() { return detail::mask() != 0; }

/// Runtime override; wins over the environment.
void set_tracing_enabled(bool on);

/// Sets the file written by `write_trace()` and the atexit hook.
void set_trace_path(const std::string& path);

/// Writes all spans captured so far to the configured path (or `path`).
/// May be called repeatedly; the file is rewritten in full each time.
/// Returns false (with a warning log) when no path is set or I/O fails.
bool write_trace();
bool write_trace(const std::string& path);

/// Discards captured spans (buffers stay registered).
void clear_trace();

/// Per-call-site identity of a span: the name (a string literal — it is
/// stored by pointer) plus lazily resolved sink handles (metrics
/// histogram; flight-recorder name id, generation-tagged so remapping
/// the ring file invalidates stale ids).
class SpanSite {
 public:
  /// `flow_target` marks sites whose trace events carry a Chrome-trace
  /// flow binding (`ph:"f"`) back to the live frame context — used by
  /// the pool-worker span so cross-thread children link to their frame.
  explicit SpanSite(const char* name, bool flow_target = false)
      : name_(name), flow_target_(flow_target) {}
  const char* name() const { return name_; }
  bool flow_target() const { return flow_target_; }
  Histogram& hist();
  std::atomic<std::uint64_t>& flight_token() { return flight_token_; }
  /// Lazily resolved per-site PMU counter handles (owned by pmu.cpp).
  std::atomic<void*>& pmu_cache() { return pmu_cache_; }

 private:
  const char* name_;
  bool flow_target_;
  std::atomic<Histogram*> hist_{nullptr};
  std::atomic<std::uint64_t> flight_token_{0};
  std::atomic<void*> pmu_cache_{nullptr};
};

namespace detail {
void record_span(SpanSite& site, std::int64_t t0_ns, std::int64_t t1_ns,
                 int mask, const PmuReading& pmu_begin);
/// Flight-recorder span event (implemented in flight.cpp); `begin`
/// distinguishes scope entry from exit.
void flight_span_event(SpanSite& site, bool begin, std::int64_t t_ns);
/// Flow-source marker for a frame context (context.cpp -> trace buffer):
/// the `ph:"s"` anchor every cross-thread child's `ph:"f"` binds to.
void record_flow_source(const char* label, std::uint64_t trace_id,
                        std::int64_t frame_id, std::int64_t t_ns);
/// Reads the thread's PMU group again and adds the deltas from
/// `pmu_begin` to the site's `pmu/<stage>.*` counters (pmu.cpp).
void pmu_accumulate(SpanSite& site, const PmuReading& pmu_begin);
void touch_trace_registry();
}  // namespace detail

/// RAII span; see the file comment for the cost model.
class Span {
 public:
  explicit Span(SpanSite& site) {
    const int m = detail::mask();
    if (m == 0) return;
    site_ = &site;
    mask_ = m;
    if ((m & detail::kPmuBit) != 0) pmu_ = detail::pmu_read();
    t0_ns_ = detail::now_ns();
    if ((m & detail::kFlightBit) != 0)
      detail::flight_span_event(site, true, t0_ns_);
  }
  ~Span() {
    if (site_ != nullptr)
      detail::record_span(*site_, t0_ns_, detail::now_ns(), mask_, pmu_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanSite* site_ = nullptr;
  int mask_ = 0;
  std::int64_t t0_ns_ = 0;
  detail::PmuReading pmu_;
};

}  // namespace mmhand::obs

#define MMHAND_OBS_CONCAT2_(a, b) a##b
#define MMHAND_OBS_CONCAT_(a, b) MMHAND_OBS_CONCAT2_(a, b)

/// Declares a scoped span covering the rest of the enclosing block.
#define MMHAND_SPAN(name_literal)                                \
  static ::mmhand::obs::SpanSite MMHAND_OBS_CONCAT_(             \
      mmhand_obs_site_, __LINE__){name_literal};                 \
  ::mmhand::obs::Span MMHAND_OBS_CONCAT_(mmhand_obs_span_,       \
                                         __LINE__){              \
      MMHAND_OBS_CONCAT_(mmhand_obs_site_, __LINE__)}
