#include "mmhand/obs/telemetry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "mmhand/common/clock.hpp"
#include "mmhand/common/io_safe.hpp"
#include "mmhand/common/ring.hpp"
#include "mmhand/fault/fault.hpp"
#include "mmhand/obs/budget.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/runlog.hpp"

namespace mmhand::obs {

namespace {

using detail::json_escape;
using detail::json_number;

/// True once set_telemetry has constructed the sampler; lets the atexit
/// path bail without instantiating the static below during shutdown.
std::atomic<bool> g_active{false};

struct Sampler;
std::string tick_locked(Sampler& s);

struct Sampler {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool started = false;  ///< a configuration is installed
  bool running = false;  ///< the worker thread should keep looping
  TelemetryConfig config;
  BudgetSet budgets;
  bool have_budgets = false;
  io_safe::LineWriter out;
  RingBuffer<std::string> ring{512};
  std::uint64_t seq = 0;
  std::uint64_t breach_total = 0;
  std::int64_t last_t_ns = 0;
  std::map<std::string, std::int64_t> prev_counters;
  std::map<std::string, HistogramSnapshot> prev_hists;
  std::array<std::uint64_t, fault::kNumKinds> prev_faults{};

  /// This static is constructed after the obs atexit hook registers, so
  /// it is destroyed first — the worker must be joined here, not only
  /// in stop_telemetry (a joinable thread's destructor terminates).
  ~Sampler() {
    g_active.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(mu);
      if (!started) return;
      running = false;
    }
    cv.notify_all();
    if (worker.joinable()) worker.join();
    std::lock_guard<std::mutex> lk(mu);
    tick_locked(*this);  // final interval: flushed, not lost
    started = false;
    out.close();
  }
};

Sampler& sampler() {
  static Sampler s;
  return s;
}

void emit_locked(Sampler& s, const std::string& line) {
  s.ring.push(line);
  if (s.out.is_open() && !s.out.append(line))
    MMHAND_WARN("telemetry: append to %s failed", s.out.path().c_str());
}

/// Rewrites the OpenMetrics mirror from lifetime registry state (write
/// to a temp sibling + rename, so scrapers never see a partial file).
void write_openmetrics_locked(const Sampler& s, const MetricsSample& ms) {
  const std::string& path = s.config.openmetrics_path;
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp, std::ios::trunc);
  if (!f) {
    MMHAND_WARN("telemetry: cannot write OpenMetrics file %s", tmp.c_str());
    return;
  }
  const auto label = [](const std::string& name) {
    std::string out;
    for (const char c : name) {
      if (c == '\\' || c == '"') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  };
  f << "# TYPE mmhand_events counter\n"
    << "# HELP mmhand_events Lifetime event counts from the mmhand "
       "metrics registry.\n";
  for (const auto& [name, v] : ms.counters)
    f << "mmhand_events_total{name=\"" << label(name) << "\"} " << v << "\n";
  f << "# TYPE mmhand_gauge gauge\n"
    << "# HELP mmhand_gauge Last-write-wins scalars (loss, lr, ...).\n";
  for (const auto& [name, v] : ms.gauges)
    f << "mmhand_gauge{name=\"" << label(name) << "\"} " << json_number(v)
      << "\n";
  f << "# TYPE mmhand_stage_latency_us summary\n"
    << "# HELP mmhand_stage_latency_us Lifetime per-stage latency "
       "distribution in microseconds.\n";
  for (const auto& [name, snap] : ms.histograms) {
    const HistogramStats st = snapshot_stats(snap);
    const std::string l = label(name);
    f << "mmhand_stage_latency_us{name=\"" << l << "\",quantile=\"0.5\"} "
      << json_number(st.p50) << "\n"
      << "mmhand_stage_latency_us{name=\"" << l << "\",quantile=\"0.95\"} "
      << json_number(st.p95) << "\n"
      << "mmhand_stage_latency_us{name=\"" << l << "\",quantile=\"0.99\"} "
      << json_number(st.p99) << "\n"
      << "mmhand_stage_latency_us_count{name=\"" << l << "\"} " << st.count
      << "\n"
      << "mmhand_stage_latency_us_sum{name=\"" << l << "\"} "
      << json_number(st.sum) << "\n";
  }
  f << "# TYPE mmhand_fault_injected counter\n"
    << "# HELP mmhand_fault_injected Faults injected per kind "
       "(MMHAND_FAULT).\n";
  for (int k = 0; k < fault::kNumKinds; ++k) {
    const auto kind = static_cast<fault::Kind>(k);
    const std::uint64_t n = fault::injected_count(kind);
    if (n > 0)
      f << "mmhand_fault_injected_total{kind=\"" << fault::kind_name(kind)
        << "\"} " << n << "\n";
  }
  f << "# TYPE mmhand_budget_breaches counter\n"
    << "# HELP mmhand_budget_breaches Latency-budget breaches across all "
       "telemetry intervals.\n"
    << "mmhand_budget_breaches_total " << s.breach_total << "\n";
  f << "# TYPE mmhand_telemetry_intervals counter\n"
    << "# HELP mmhand_telemetry_intervals Telemetry intervals emitted.\n"
    << "mmhand_telemetry_intervals_total " << s.seq << "\n";
  f << "# EOF\n";
  f.flush();
  if (!f) {
    MMHAND_WARN("telemetry: short write on %s", tmp.c_str());
    return;
  }
  f.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    MMHAND_WARN("telemetry: cannot publish %s", path.c_str());
}

/// One sampling interval: snapshot, window, judge budgets, emit.
// NOLINTNEXTLINE(misc-use-internal-linkage): declared above Sampler
std::string tick_locked(Sampler& s) {
  const std::int64_t t_ns = detail::now_ns();
  const double t_ms = static_cast<double>(t_ns) / 1e6;
  const double dt_ms = s.last_t_ns == 0
                           ? t_ms
                           : static_cast<double>(t_ns - s.last_t_ns) / 1e6;
  s.last_t_ns = t_ns;
  ++s.seq;

  const MetricsSample ms = sample_metrics();
  std::vector<BudgetBreach> breaches;

  std::ostringstream os;
  os << "{\"kind\": \"telemetry\", \"seq\": " << s.seq
     << ", \"t_ms\": " << json_number(t_ms)
     << ", \"dt_ms\": " << json_number(dt_ms);

  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, total] : ms.counters) {
    const auto it = s.prev_counters.find(name);
    const std::int64_t delta =
        total - (it == s.prev_counters.end() ? 0 : it->second);
    s.prev_counters[name] = total;
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": {\"total\": " << total << ", \"delta\": " << delta << "}";
    first = false;
  }
  os << "}";

  os << ", \"gauges\": {";
  first = true;
  for (const auto& [name, v] : ms.gauges) {
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": " << json_number(v);
    first = false;
  }
  os << "}";

  // Stages: windowed latency stats over just this interval, from the
  // raw bucket diff.  Stages with no events this interval are omitted.
  os << ", \"stages\": {";
  first = true;
  for (const auto& [name, snap] : ms.histograms) {
    const auto it = s.prev_hists.find(name);
    const HistogramSnapshot delta =
        it == s.prev_hists.end() ? snap : snapshot_delta(snap, it->second);
    s.prev_hists[name] = snap;
    if (delta.count == 0) continue;
    const HistogramStats w = snapshot_stats(delta);
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": {\"count\": " << w.count
       << ", \"mean_us\": " << json_number(w.mean)
       << ", \"p50_us\": " << json_number(w.p50)
       << ", \"p95_us\": " << json_number(w.p95)
       << ", \"p99_us\": " << json_number(w.p99)
       << ", \"max_us\": " << json_number(w.max) << "}";
    first = false;
    if (s.have_budgets) {
      std::vector<BudgetBreach> b = s.budgets.check(name, w);
      breaches.insert(breaches.end(), b.begin(), b.end());
    }
  }
  os << "}";

  os << ", \"faults\": {";
  first = true;
  for (int k = 0; k < fault::kNumKinds; ++k) {
    const auto kind = static_cast<fault::Kind>(k);
    const std::uint64_t total = fault::injected_count(kind);
    const std::uint64_t delta = total - s.prev_faults[k];
    s.prev_faults[k] = total;
    if (total == 0) continue;
    os << (first ? "" : ", ") << '"' << fault::kind_name(kind)
       << "\": {\"total\": " << total << ", \"delta\": " << delta << "}";
    first = false;
  }
  os << "}";

  os << ", \"breaches\": [";
  for (std::size_t i = 0; i < breaches.size(); ++i) {
    const BudgetBreach& b = breaches[i];
    os << (i == 0 ? "" : ", ") << "{\"stage\": \"" << json_escape(b.stage)
       << "\", \"field\": \"" << b.field
       << "\", \"limit\": " << json_number(b.limit)
       << ", \"actual\": " << json_number(b.actual) << "}";
  }
  s.breach_total += breaches.size();
  if (!breaches.empty()) {
    static Counter& breach_counter = counter("obs/budget.breaches");
    breach_counter.add(static_cast<std::int64_t>(breaches.size()));
  }
  os << "], \"breach_total\": " << s.breach_total << "}";

  const std::string line = os.str();
  emit_locked(s, line);
  if (!s.config.openmetrics_path.empty()) write_openmetrics_locked(s, ms);
  return line;
}

void worker_loop() {
  Sampler& s = sampler();
  std::unique_lock<std::mutex> lk(s.mu);
  while (s.running) {
    s.cv.wait_for(lk, std::chrono::milliseconds(s.config.interval_ms),
                  [&s] { return !s.running; });
    if (!s.running) break;
    tick_locked(s);
  }
}

bool parse_int(const std::string& text, long lo, long hi, long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace

bool parse_telemetry_spec(const std::string& spec, TelemetryConfig* config,
                          std::string* error) {
  TelemetryConfig out;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    long v = 0;
    if (first) {
      if (!parse_int(token, 1, 60000, &v)) {
        if (error != nullptr)
          *error = "telemetry spec: interval_ms must lead and be an "
                   "integer in [1, 60000] (grammar: <interval_ms>"
                   "[,out=PATH][,om=PATH][,budgets=PATH][,ring=N])";
        return false;
      }
      out.interval_ms = static_cast<int>(v);
      first = false;
    } else if (token.rfind("out=", 0) == 0) {
      out.out_path = token.substr(4);
    } else if (token.rfind("om=", 0) == 0) {
      out.openmetrics_path = token.substr(3);
    } else if (token.rfind("budgets=", 0) == 0) {
      out.budgets_path = token.substr(8);
    } else if (token.rfind("ring=", 0) == 0) {
      if (!parse_int(token.substr(5), 16, 65536, &v)) {
        if (error != nullptr)
          *error = "telemetry spec: ring must be an integer in [16, 65536]";
        return false;
      }
      out.ring_capacity = static_cast<int>(v);
    } else if (!token.empty()) {
      if (error != nullptr)
        *error = "telemetry spec: unknown key '" + token + "'";
      return false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  *config = out;
  return true;
}

bool set_telemetry(const TelemetryConfig& config) {
  if (config.interval_ms < 0 || config.interval_ms > 60000) {
    MMHAND_WARN("telemetry: interval_ms %d outside [0, 60000]",
                config.interval_ms);
    return false;
  }
  stop_telemetry();

  // The registries the sampler reads must be constructed before the
  // sampler's static state so they are destroyed after it (and after
  // the worker is joined).
  detail::touch_metrics_registry();
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  s.config = config;
  s.config.ring_capacity = std::clamp(config.ring_capacity, 16, 65536);
  s.ring = RingBuffer<std::string>(
      static_cast<std::size_t>(s.config.ring_capacity));
  s.seq = 0;
  s.breach_total = 0;
  s.last_t_ns = 0;
  s.prev_counters.clear();
  s.prev_hists.clear();
  s.prev_faults = {};
  s.have_budgets = false;
  if (!config.budgets_path.empty()) {
    std::string error;
    s.budgets = BudgetSet::from_file(config.budgets_path, &error);
    if (!error.empty())
      MMHAND_WARN("telemetry: %s (budgets disabled)", error.c_str());
    else
      s.have_budgets = true;
  }
  s.out.close();
  if (!config.out_path.empty() && !s.out.open(config.out_path))
    MMHAND_WARN("telemetry: cannot open %s (stream disabled)",
                config.out_path.c_str());

  const std::int64_t now_unix_ms = unix_time_ms();
  RunRecord start("telemetry_start");
  start.field("interval_ms", s.config.interval_ms)
      .field("ring", s.config.ring_capacity)
      .field("budgets",
             s.have_budgets ? s.config.budgets_path.c_str() : "")
      .field("unix_ms", now_unix_ms)
      .field("utc", format_utc(now_unix_ms));
  emit_locked(s, start.json());

  s.started = true;
  g_active.store(true, std::memory_order_release);
  detail::set_mask_bit(detail::kMetricsBit, true);
  detail::set_mask_bit(detail::kTelemetryBit, true);
  if (s.config.interval_ms > 0) {
    s.running = true;
    s.worker = std::thread(worker_loop);
  }
  return true;
}

void stop_telemetry() {
  if (!g_active.load(std::memory_order_acquire)) return;
  Sampler& s = sampler();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.started) return;
    s.running = false;
    worker = std::move(s.worker);
  }
  s.cv.notify_all();
  if (worker.joinable()) worker.join();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    tick_locked(s);  // final interval: nothing recorded after it is lost
    s.started = false;
    s.out.close();
  }
  g_active.store(false, std::memory_order_release);
  detail::set_mask_bit(detail::kTelemetryBit, false);
}

std::string telemetry_sample_now() {
  if (!g_active.load(std::memory_order_acquire)) return "";
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.started) return "";
  return tick_locked(s);
}

std::uint64_t telemetry_intervals() {
  if (!g_active.load(std::memory_order_acquire)) return 0;
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.seq;
}

std::uint64_t telemetry_breach_total() {
  if (!g_active.load(std::memory_order_acquire)) return 0;
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.breach_total;
}

std::vector<std::string> telemetry_ring_tail(std::size_t max_records) {
  std::vector<std::string> out;
  if (!g_active.load(std::memory_order_acquire)) return out;
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  const std::size_t n = std::min(max_records, s.ring.size());
  out.reserve(n);
  for (std::size_t i = s.ring.size() - n; i < s.ring.size(); ++i)
    out.push_back(s.ring[i]);
  return out;
}

namespace detail {

void telemetry_emit_record(const std::string& line) {
  if (!g_active.load(std::memory_order_acquire)) return;
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  if (!s.started) return;
  emit_locked(s, line);
}

void telemetry_on_mask_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    TelemetryConfig config;
    std::string error;
    if (!parse_telemetry_spec(telemetry_spec_raw(), &config, &error)) {
      MMHAND_WARN("MMHAND_TELEMETRY: %s", error.c_str());
      set_mask_bit(kTelemetryBit, false);
      return;
    }
    if (!set_telemetry(config)) set_mask_bit(kTelemetryBit, false);
  });
}

}  // namespace detail

}  // namespace mmhand::obs
