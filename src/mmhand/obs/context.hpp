#pragma once

// Frame-scoped trace contexts: the causal link between a pipeline
// request (one radar frame through `radar::process_frame`, one
// inference segment through `pose::predict_recording`) and every span
// it spawns — including spans recorded on thread-pool workers.
//
//   {
//     MMHAND_SPAN("radar/process_frame");
//     obs::FrameScope frame("radar/process_frame");
//     ...stages, parallel_for fan-outs...
//   }  // per-frame record emitted here
//
// A `FrameScope` allocates a process-unique 64-bit trace id, installs
// itself as the calling thread's current context, and propagates across
// `parallel_for` via the pool's task-context slot, so child spans on
// workers inherit the frame's identity.  While a context is live:
//
//   * every recorded span is tagged with the trace id (Chrome trace
//     `args`), and the trace gains flow events (`ph:"s"` at the frame
//     span, `ph:"f"` at each worker span) that visually link
//     cross-thread children to their parent frame;
//   * per-stage durations accumulate into the context, and the scope's
//     destructor emits one per-frame record — frame_id, trace id, label,
//     total, and the per-stage latency vector — to the telemetry JSONL
//     stream (kind "frame") and the flight-recorder ring.
//
// Scopes nest (the inner scope wins, the outer is restored) and cost
// one relaxed atomic load when observability is fully off.  Contexts
// never touch the data the pipeline computes, so numeric outputs are
// bitwise identical with the layer on or off.

#include <cstdint>
#include <mutex>
#include <vector>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

namespace detail {

/// Live state of one frame scope.  Stage accumulation is mutex-guarded:
/// worker threads append concurrently, but only a handful of times per
/// frame, so contention is negligible next to the stages themselves.
struct FrameContext {
  std::uint64_t trace_id = 0;
  std::int64_t frame_id = 0;
  const char* label = nullptr;
  unsigned origin_tid = 0;
  std::int64_t t0_ns = 0;
  /// Allocation counter at frame start, -1 when tracking is off.
  std::int64_t allocs0 = -1;

  struct StageAcc {
    const char* name;
    std::int64_t total_ns;
    std::int64_t count;
  };
  std::mutex mu;
  std::vector<StageAcc> stages;

  void note_stage(const char* name, std::int64_t dur_ns);
};

/// The innermost live context on the calling thread (propagated to pool
/// workers for the duration of a region), or null.
FrameContext* current_frame_context();

}  // namespace detail

/// RAII frame scope; see the file comment.  `frame_id` defaults to a
/// process-wide monotonic sequence shared by all labels.
class FrameScope {
 public:
  explicit FrameScope(const char* label, std::int64_t frame_id = -1);
  ~FrameScope();
  FrameScope(const FrameScope&) = delete;
  FrameScope& operator=(const FrameScope&) = delete;

  /// 0 when the scope is inactive (observability fully off).
  std::uint64_t trace_id() const;

 private:
  detail::FrameContext* ctx_ = nullptr;
  void* prev_ = nullptr;
};

/// Trace id of the calling thread's innermost live frame scope (0 when
/// none).  Works on pool workers inside a propagated region.
std::uint64_t current_trace_id();

/// Per-frame records emitted so far (frame scopes that completed while
/// any observability was on).
std::uint64_t frame_records_emitted();

}  // namespace mmhand::obs
