#include "mmhand/obs/context.hpp"

#include "mmhand/obs/alloc.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>

#include "mmhand/common/parallel.hpp"
#include "mmhand/obs/flight.hpp"
#include "mmhand/obs/runlog.hpp"
#include "mmhand/obs/telemetry.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::obs {

namespace {

std::atomic<std::int64_t> g_frame_seq{0};
std::atomic<std::uint64_t> g_records_emitted{0};

/// Span site for pool workers' participation in a propagated region.
/// Marked as a flow target: its trace events carry the `ph:"f"` flow
/// binding that links the worker slice back to the frame span.
SpanSite& worker_site() {
  static SpanSite site{"parallel/worker", /*flow_target=*/true};
  return site;
}

void* worker_begin() {
  // No live context on the submitting thread, or observability off:
  // nothing to attribute, keep the region untouched.
  if (detail::current_frame_context() == nullptr) return nullptr;
  if (detail::mask() == 0) return nullptr;
  return new Span(worker_site());
}

void worker_end(void* token) { delete static_cast<Span*>(token); }

/// Builds the per-frame JSONL record from the accumulated stage vector.
std::string frame_record_json(const detail::FrameContext& ctx,
                              double total_us, std::int64_t allocs) {
  RunRecord rec("frame");
  rec.field("frame_id", ctx.frame_id)
      .field("trace_id", static_cast<std::int64_t>(ctx.trace_id))
      .field("label", ctx.label)
      .field("total_us", total_us);
  // Allocation attribution needs the interposer switched on
  // (MMHAND_ALLOC_TRACK=1); without it the delta reads as zero, which
  // would be indistinguishable from a genuinely pure frame, so the
  // field is emitted only while tracking.
  if (allocs >= 0) rec.field("allocs", allocs);
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < ctx.stages.size(); ++i) {
    const auto& s = ctx.stages[i];
    os << (i == 0 ? "" : ", ") << '"' << detail::json_escape(s.name)
       << "\": {\"us\": "
       << detail::json_number(static_cast<double>(s.total_ns) / 1000.0)
       << ", \"count\": " << s.count << "}";
  }
  os << "}";
  rec.raw("stages", os.str());
  return rec.json();
}

}  // namespace

namespace detail {

void FrameContext::note_stage(const char* name, std::int64_t dur_ns) {
  std::lock_guard<std::mutex> lk(mu);
  for (StageAcc& s : stages) {
    if (s.name == name) {
      s.total_ns += dur_ns;
      ++s.count;
      return;
    }
  }
  stages.push_back({name, dur_ns, 1});
}

FrameContext* current_frame_context() {
  return static_cast<FrameContext*>(mmhand::task_context());
}

void context_install_hooks() {
  static std::once_flag once;
  std::call_once(once, [] {
    mmhand::WorkerObserver obs;
    obs.begin = worker_begin;
    obs.end = worker_end;
    mmhand::set_worker_observer(obs);
  });
}

}  // namespace detail

FrameScope::FrameScope(const char* label, std::int64_t frame_id) {
  const int m = detail::mask();
  if (m == 0) return;
  auto* ctx = new detail::FrameContext();
  ctx->trace_id = static_cast<std::uint64_t>(
      g_frame_seq.fetch_add(1, std::memory_order_relaxed) + 1);
  ctx->frame_id = frame_id >= 0
                      ? frame_id
                      : static_cast<std::int64_t>(ctx->trace_id) - 1;
  ctx->label = label;
  ctx->origin_tid = detail::thread_id();
  ctx->t0_ns = detail::now_ns();
  ctx->allocs0 = alloc_tracking_enabled() ? alloc_counts().allocs : -1;
  prev_ = mmhand::task_context();
  mmhand::set_task_context(ctx);
  ctx_ = ctx;
  if ((m & detail::kTraceBit) != 0)
    detail::record_flow_source(label, ctx->trace_id, ctx->frame_id,
                               ctx->t0_ns);
}

FrameScope::~FrameScope() {
  if (ctx_ == nullptr) return;
  mmhand::set_task_context(prev_);
  const std::int64_t t1 = detail::now_ns();
  const double total_us =
      static_cast<double>(t1 - ctx_->t0_ns) / 1000.0;
  g_records_emitted.fetch_add(1, std::memory_order_relaxed);
  // Process-wide counter, so concurrent frames each absorb the other's
  // allocations; the purity gate runs frames serially where the delta
  // is exact.
  const std::int64_t allocs =
      ctx_->allocs0 >= 0 && alloc_tracking_enabled()
          ? alloc_counts().allocs - ctx_->allocs0
          : -1;
  // No further spans can reach this context: safe to read unlocked.
  detail::telemetry_emit_record(frame_record_json(*ctx_, total_us, allocs));
  if ((detail::mask() & detail::kFlightBit) != 0) {
    const char* worst = "";
    std::int64_t worst_ns = -1;
    for (const auto& s : ctx_->stages)
      if (s.total_ns > worst_ns) {
        worst_ns = s.total_ns;
        worst = s.name;
      }
    // Flight record text is one cache line minus the header (40 bytes):
    // keep the stage basename only so `worst=` survives; the telemetry
    // frame record carries the full label and stage names.
    if (const char* slash = std::strrchr(worst, '/')) worst = slash + 1;
    char line[128];
    std::snprintf(line, sizeof(line), "frame %" PRId64 " %.0fus worst=%s",
                  ctx_->frame_id, total_us, worst);
    detail::flight_note_log(line);
  }
  delete ctx_;
}

std::uint64_t FrameScope::trace_id() const {
  return ctx_ != nullptr ? ctx_->trace_id : 0;
}

std::uint64_t current_trace_id() {
  const detail::FrameContext* ctx = detail::current_frame_context();
  return ctx != nullptr ? ctx->trace_id : 0;
}

std::uint64_t frame_records_emitted() {
  return g_records_emitted.load(std::memory_order_relaxed);
}

}  // namespace mmhand::obs
