#pragma once

// Leveled logging for mmHand.
//
// One process-wide level gates every message; below-level calls cost a
// single relaxed atomic load — no formatting, no allocation, no lock.
// The level resolves lazily on first use:
//   1. `set_log_level(...)` (runtime override, used by tools and tests),
//   2. the `MMHAND_LOG_LEVEL` environment variable
//      (`silent|warn|info|debug`, or `0..3`),
//   3. default `kInfo`.
// Messages go to stderr as `[mmhand] ...` lines (warnings as
// `[mmhand] warning: ...`); concurrent callers never interleave within a
// line.  Use the MMHAND_WARN/INFO/DEBUG macros so the format arguments
// are not even evaluated when the level is off.

#include <cstdarg>

namespace mmhand::obs {

enum class LogLevel : int {
  kSilent = 0,  ///< nothing, ever
  kWarn = 1,    ///< dropped data, degraded behavior
  kInfo = 2,    ///< progress of long-running work (training, caching)
  kDebug = 3,   ///< per-step detail
};

/// Currently effective level (resolving the environment on first call).
LogLevel log_level();

/// Overrides the level at runtime; wins over `MMHAND_LOG_LEVEL`.
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// printf-style emission at `level`; prefixes `[mmhand] `, appends '\n'.
/// Prefer the macros below, which skip argument evaluation when disabled.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace mmhand::obs

#define MMHAND_LOG_AT_(level_, ...)                          \
  do {                                                       \
    if (::mmhand::obs::log_enabled(level_))                  \
      ::mmhand::obs::logf(level_, __VA_ARGS__);              \
  } while (false)

#define MMHAND_WARN(...) \
  MMHAND_LOG_AT_(::mmhand::obs::LogLevel::kWarn, __VA_ARGS__)
#define MMHAND_INFO(...) \
  MMHAND_LOG_AT_(::mmhand::obs::LogLevel::kInfo, __VA_ARGS__)
#define MMHAND_DEBUG(...) \
  MMHAND_LOG_AT_(::mmhand::obs::LogLevel::kDebug, __VA_ARGS__)
