#include "mmhand/obs/state.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "mmhand/obs/alloc.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/telemetry.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::obs::detail {

namespace {

std::mutex g_path_mu;
std::string g_trace_path;      // guarded by g_path_mu
std::string g_metrics_path;    // guarded by g_path_mu
std::string g_run_log_path;    // guarded by g_path_mu
std::string g_telemetry_spec;  // guarded by g_path_mu
std::string g_flight_spec;     // guarded by g_path_mu

std::atomic<unsigned> g_next_thread_id{0};

/// Dumps whatever was requested via the environment when the process
/// exits, so `MMHAND_TRACE=t.json ./bench` needs no code changes in the
/// binary being observed.
void at_exit_dump() {
  // The sampler thread must be joined before any static sink it reads
  // can be destroyed; stopping also flushes the final interval.
  stop_telemetry();
  if (!trace_path().empty() && tracing_enabled()) write_trace();
  if (!metrics_path().empty() && metrics_enabled())
    write_metrics(metrics_path());
}

}  // namespace

std::atomic<int>& mask_atomic() {
  static std::atomic<int> mask{-1};
  return mask;
}

int init_mask() {
  static std::once_flag once;
  std::call_once(once, [] {
    (void)now_ns();  // pin the time base before any span can run
    int m = 0;
    if (const char* t = std::getenv("MMHAND_TRACE"); t != nullptr && *t) {
      m |= kTraceBit;
      std::lock_guard<std::mutex> lk(g_path_mu);
      g_trace_path = t;
    }
    if (const char* p = std::getenv("MMHAND_METRICS"); p != nullptr && *p) {
      m |= kMetricsBit;
      std::lock_guard<std::mutex> lk(g_path_mu);
      g_metrics_path = p;
    }
    if (const char* r = std::getenv("MMHAND_RUN_LOG"); r != nullptr && *r) {
      m |= kRunLogBit;
      std::lock_guard<std::mutex> lk(g_path_mu);
      g_run_log_path = r;
    }
    // Telemetry implies metrics: the sampler snapshots the registry, so
    // the span histograms it windows must actually be recording.
    if (const char* s = std::getenv("MMHAND_TELEMETRY");
        s != nullptr && *s) {
      m |= kTelemetryBit | kMetricsBit;
      std::lock_guard<std::mutex> lk(g_path_mu);
      g_telemetry_spec = s;
    }
    if (const char* fl = std::getenv("MMHAND_FLIGHT");
        fl != nullptr && *fl) {
      m |= kFlightBit;
      std::lock_guard<std::mutex> lk(g_path_mu);
      g_flight_spec = fl;
    }
    // Allocation counting is orthogonal to the mask bits: it gates the
    // operator-new interposer in alloc.cpp, not an observability sink.
    if (const char* a = std::getenv("MMHAND_ALLOC_TRACK");
        a != nullptr && *a && *a != '0') {
      set_alloc_tracking(true);
    }
    // MMHAND_PMU is read by pmu.cpp so the perf_event plumbing (and its
    // lint confinement) stays in one TU; it implies metrics because the
    // per-stage counter aggregates land in the metrics registry.
    m |= pmu_mask_bits();
    // Frame contexts ride the thread pool's task-context slot; install
    // the propagation hooks unconditionally (they early-out while no
    // context is live) so runtime enablement needs no extra step.
    context_install_hooks();
    if (m != 0) {
      // Touch the sinks so their static state outlives this atexit hook
      // (handlers run LIFO: registered later -> runs earlier).
      touch_trace_registry();
      touch_metrics_registry();
      std::atexit(at_exit_dump);
    }
    mask_atomic().store(m, std::memory_order_relaxed);
  });
  const int m = mask_atomic().load(std::memory_order_relaxed);
  // Subsystems with background state start outside the call_once body:
  // the sampler thread's own first obs call would otherwise deadlock
  // against this initialization.  Both hooks are internally one-shot.
  if ((m & kFlightBit) != 0) flight_on_mask_init();
  if ((m & kTelemetryBit) != 0) telemetry_on_mask_init();
  // Reload rather than returning the pre-hook snapshot: a hook that
  // rejects its spec clears its own bit, and the first caller must see
  // the subsystem as disabled, not just subsequent ones.
  return mask_atomic().load(std::memory_order_relaxed);
}

void set_mask_bit(int bit, bool on) {
  int m = mask();  // force env resolution first
  int desired;
  do {
    desired = on ? (m | bit) : (m & ~bit);
  } while (!mask_atomic().compare_exchange_weak(m, desired,
                                                std::memory_order_relaxed));
}

std::int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

unsigned thread_id() {
  thread_local const unsigned id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string trace_path() {
  (void)mask();  // make sure the environment was consulted
  std::lock_guard<std::mutex> lk(g_path_mu);
  return g_trace_path;
}

void set_trace_path(const std::string& path) {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  g_trace_path = path;
}

std::string metrics_path() {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  return g_metrics_path;
}

void set_metrics_path(const std::string& path) {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  g_metrics_path = path;
}

std::string run_log_path_raw() {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  return g_run_log_path;
}

void set_run_log_path_raw(const std::string& path) {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  g_run_log_path = path;
}

std::string telemetry_spec_raw() {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  return g_telemetry_spec;
}

std::string flight_spec_raw() {
  (void)mask();
  std::lock_guard<std::mutex> lk(g_path_mu);
  return g_flight_spec;
}

}  // namespace mmhand::obs::detail
