#include "mmhand/obs/pmu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/trace.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mmhand::obs {

namespace {

/// Flips true (process-wide, sticky) on the first failed
/// `perf_event_open`; every subsequent reading degrades to clock-only
/// without another syscall.
std::atomic<bool> g_unavailable{false};

constexpr const char* kEventNames[kPmuEvents] = {
    "cycles", "instructions", "cache_refs", "cache_misses",
    "branch_misses"};

/// Lazily resolved per-site handles for the five aggregate counters.
struct PmuSiteCounters {
  Counter* c[kPmuEvents];
};

PmuSiteCounters* site_counters(SpanSite& site) {
  std::atomic<void*>& slot = site.pmu_cache();
  void* p = slot.load(std::memory_order_acquire);
  if (p == nullptr) {
    auto* made = new PmuSiteCounters();
    for (int i = 0; i < kPmuEvents; ++i)
      made->c[i] = &counter(std::string("pmu/") + site.name() + "." +
                            kEventNames[i]);
    if (slot.compare_exchange_strong(p, made, std::memory_order_acq_rel))
      return made;
    delete made;  // another thread won; use its struct
  }
  return static_cast<PmuSiteCounters*>(p);
}

#if defined(__linux__)

long perf_open(std::uint32_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.read_format = PERF_FORMAT_GROUP;
  // Counting user-space only keeps the group usable at
  // perf_event_paranoid=1 (the common non-root default).
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
}

/// Opens the calling thread's counter group, or -1 (marking the whole
/// layer unavailable) when any member fails.
int open_group() {
  constexpr std::uint32_t kConfigs[kPmuEvents] = {
      PERF_COUNT_HW_CPU_CYCLES,      PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_BRANCH_MISSES};
  const long leader = perf_open(kConfigs[0], -1);
  if (leader < 0) return -1;
  for (int i = 1; i < kPmuEvents; ++i) {
    if (perf_open(kConfigs[i], static_cast<int>(leader)) < 0) {
      close(static_cast<int>(leader));
      return -1;
    }
  }
  return static_cast<int>(leader);
}

/// The calling thread's group fd: -2 unopened, -1 failed, >= 0 live.
int thread_group_fd() {
  thread_local int fd = -2;
  if (fd == -2) {
    if (g_unavailable.load(std::memory_order_relaxed)) {
      fd = -1;
    } else {
      fd = open_group();
      if (fd < 0 &&
          !g_unavailable.exchange(true, std::memory_order_relaxed))
        MMHAND_WARN(
            "MMHAND_PMU: perf_event_open unavailable (container, "
            "perf_event_paranoid, or unsupported host); continuing "
            "with clock-only spans");
    }
  }
  return fd;
}

#endif  // defined(__linux__)

}  // namespace

void set_pmu_enabled(bool on) {
  detail::set_mask_bit(detail::kPmuBit, on);
  if (on) detail::set_mask_bit(detail::kMetricsBit, true);
}

bool pmu_available() {
  return !g_unavailable.load(std::memory_order_relaxed);
}

const char* pmu_event_name(int index) {
  return index >= 0 && index < kPmuEvents ? kEventNames[index] : "";
}

namespace detail {

int pmu_mask_bits() {
  const char* s = std::getenv("MMHAND_PMU");
  if (s == nullptr || *s == '\0' || std::strcmp(s, "0") == 0 ||
      std::strcmp(s, "off") == 0)
    return 0;
  return kPmuBit | kMetricsBit;
}

PmuReading pmu_read() {
  PmuReading r;
#if defined(__linux__)
  const int fd = thread_group_fd();
  if (fd < 0) return r;
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
  std::uint64_t buf[1 + kPmuEvents];
  const ssize_t n = read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf)) || buf[0] != kPmuEvents) {
    if (!g_unavailable.exchange(true, std::memory_order_relaxed))
      MMHAND_WARN("MMHAND_PMU: short counter-group read; continuing "
                  "with clock-only spans");
    return r;
  }
  for (int i = 0; i < kPmuEvents; ++i) r.v[i] = buf[1 + i];
  r.ok = true;
#endif
  return r;
}

void pmu_accumulate(SpanSite& site, const PmuReading& begin) {
  if (!begin.ok) return;
  const PmuReading end = pmu_read();
  if (!end.ok) return;
  PmuSiteCounters* sc = site_counters(site);
  for (int i = 0; i < kPmuEvents; ++i) {
    // Clamp rather than wrap if the kernel rescheduled the group.
    const std::uint64_t d = end.v[i] >= begin.v[i] ? end.v[i] - begin.v[i]
                                                   : 0;
    sc->c[i]->add(static_cast<std::int64_t>(d));
  }
}

}  // namespace detail

}  // namespace mmhand::obs
