#include "mmhand/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "mmhand/obs/log.hpp"

namespace mmhand::obs {

namespace {

/// Bucket i >= 1 covers [2^((i-1)/2), 2^(i/2)); bucket 0 catches
/// everything below 1 and the last bucket everything above ~2^31.
int bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // also routes NaN and negatives to bucket 0
  const int i = 1 + static_cast<int>(2.0 * std::log2(v));
  return std::min(i, Histogram::kBuckets - 1);
}

double bucket_lower(int i) {
  return i == 0 ? 0.0 : std::exp2((i - 1) / 2.0);
}

double bucket_upper(int i) { return std::exp2(i / 2.0); }

/// Relaxed CAS-accumulate for the atomic-double-as-bits pattern.
void atomic_double_add(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + delta),
      std::memory_order_relaxed)) {
  }
}

void atomic_double_min(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v < std::bit_cast<double>(cur) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

void atomic_double_max(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (v > std::bit_cast<double>(cur) &&
         !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                     std::memory_order_relaxed)) {
  }
}

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry r;
  return r;
}

struct MergedHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::max();
  double max = std::numeric_limits<double>::lowest();
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

double merged_percentile(const MergedHistogram& m, double q) {
  if (m.count == 0) return 0.0;
  const double target =
      std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(m.count);
  std::uint64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (m.buckets[static_cast<std::size_t>(i)] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += m.buckets[static_cast<std::size_t>(i)];
    if (static_cast<double>(cum) >= target) {
      const double frac =
          (target - before) /
          static_cast<double>(m.buckets[static_cast<std::size_t>(i)]);
      const double lo = bucket_lower(i);
      const double hi = i == Histogram::kBuckets - 1 ? m.max
                                                     : bucket_upper(i);
      return std::clamp(lo + frac * (hi - lo), m.min, m.max);
    }
  }
  return m.max;
}

/// %.17g survives a double round-trip; trim to something readable but
/// still JSON-legal (never inf/nan — merged stats are finite by
/// construction).
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void set_metrics_enabled(bool on) {
  detail::set_mask_bit(detail::kMetricsBit, on);
  if (on) detail::touch_metrics_registry();
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) {
  Shard& shard = shards_[detail::shard_id()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(shard.sum_bits, value);
  atomic_double_min(shard.min_bits, value);
  atomic_double_max(shard.max_bits, value);
  shard.buckets[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramStats Histogram::stats() const {
  MergedHistogram m;
  for (const Shard& s : shards_) {
    m.count += s.count.load(std::memory_order_relaxed);
    m.sum += std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
    m.min = std::min(
        m.min,
        std::bit_cast<double>(s.min_bits.load(std::memory_order_relaxed)));
    m.max = std::max(
        m.max,
        std::bit_cast<double>(s.max_bits.load(std::memory_order_relaxed)));
    for (int i = 0; i < kBuckets; ++i)
      m.buckets[static_cast<std::size_t>(i)] +=
          s.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
  }
  HistogramStats out;
  out.count = m.count;
  if (m.count == 0) return out;
  out.sum = m.sum;
  out.min = m.min;
  out.max = m.max;
  out.mean = m.sum / static_cast<double>(m.count);
  out.p50 = merged_percentile(m, 50.0);
  out.p95 = merged_percentile(m, 95.0);
  out.p99 = merged_percentile(m, 99.0);
  return out;
}

double Histogram::percentile(double q) const {
  const HistogramStats s = stats();
  if (s.count == 0) return 0.0;
  MergedHistogram m;
  m.count = s.count;
  m.min = s.min;
  m.max = s.max;
  for (const Shard& shard : shards_)
    for (int i = 0; i < kBuckets; ++i)
      m.buckets[static_cast<std::size_t>(i)] +=
          shard.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
  return merged_percentile(m, q);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  double mn = std::numeric_limits<double>::max();
  double mx = std::numeric_limits<double>::lowest();
  for (const Shard& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum +=
        std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed));
    mn = std::min(
        mn, std::bit_cast<double>(s.min_bits.load(std::memory_order_relaxed)));
    mx = std::max(
        mx, std::bit_cast<double>(s.max_bits.load(std::memory_order_relaxed)));
    for (int i = 0; i < kBuckets; ++i)
      out.buckets[static_cast<std::size_t>(i)] +=
          s.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
  }
  if (out.count > 0) {
    out.min = mn;
    out.max = mx;
  }
  return out;
}

HistogramSnapshot snapshot_delta(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  d.sum = cur.sum - prev.sum;
  int lo = -1, hi = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::size_t b = static_cast<std::size_t>(i);
    d.buckets[b] =
        cur.buckets[b] >= prev.buckets[b] ? cur.buckets[b] - prev.buckets[b]
                                          : 0;
    if (d.buckets[b] > 0) {
      if (lo < 0) lo = i;
      hi = i;
    }
  }
  if (lo >= 0) {
    d.min = std::max(bucket_lower(lo), cur.min);
    d.max = hi == Histogram::kBuckets - 1 ? cur.max
                                          : std::min(bucket_upper(hi),
                                                     cur.max);
    d.max = std::max(d.max, d.min);
  }
  return d;
}

HistogramStats snapshot_stats(const HistogramSnapshot& s) {
  HistogramStats out;
  out.count = s.count;
  if (s.count == 0) return out;
  MergedHistogram m;
  m.count = s.count;
  m.sum = s.sum;
  m.min = s.min;
  m.max = s.max;
  m.buckets = s.buckets;
  out.sum = s.sum;
  out.min = s.min;
  out.max = s.max;
  out.mean = s.sum / static_cast<double>(s.count);
  out.p50 = merged_percentile(m, 50.0);
  out.p95 = merged_percentile(m, 95.0);
  out.p99 = merged_percentile(m, 99.0);
  return out;
}

MetricsSample sample_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  MetricsSample out;
  out.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    out.counters.emplace_back(name, c->value());
  out.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges)
    out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum_bits.store(0, std::memory_order_relaxed);
    s.min_bits.store(
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max()),
        std::memory_order_relaxed);
    s.max_bits.store(
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::lowest()),
        std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string metrics_json() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << json_number(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    const HistogramStats s = h->stats();
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": {\"count\": " << s.count << ", \"sum\": " << json_number(s.sum)
       << ", \"min\": " << json_number(s.min)
       << ", \"max\": " << json_number(s.max)
       << ", \"mean\": " << json_number(s.mean)
       << ", \"p50\": " << json_number(s.p50)
       << ", \"p95\": " << json_number(s.p95)
       << ", \"p99\": " << json_number(s.p99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

bool write_metrics(const std::string& path) {
  const std::string body = metrics_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MMHAND_WARN("cannot write metrics to %s", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

namespace detail {

void touch_metrics_registry() { (void)registry(); }

}  // namespace detail

}  // namespace mmhand::obs
