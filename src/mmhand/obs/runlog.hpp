#pragma once

// Append-only JSONL run records for training and evaluation.
//
// A "run log" is a file of newline-delimited JSON objects: one manifest
// record at the start of every training run (seed, config, environment),
// one record per epoch (loss, learning-rate scale, gradient norm,
// per-parameter-group tensor stats, throughput), one record per
// evaluation (MPJPE, per-joint breakdown, PCK), and one record per
// numerical anomaly the watchdog reports.  Downstream tooling
// (`tools/mmhand_report.cpp`, ad-hoc scripts) parses the lines back.
//
// Enablement follows the rest of the obs layer:
//   - `MMHAND_RUN_LOG=<path>` in the environment, resolved lazily on
//     first use, or
//   - `set_run_log_path(path)` / `set_run_log_enabled(bool)` at runtime
//     (the setters win over the environment).
// With the run log off, `runlog_enabled()` is one relaxed atomic load
// and a branch; no record is ever built.  Records are formatted locally
// and appended under a mutex, so concurrent writers never interleave
// within a line.  Writing a record never touches the data it describes:
// training outputs are bitwise identical with the run log on or off
// (enforced by tests/test_runlog.cpp).

#include <cstdint>
#include <sstream>
#include <string>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

/// True when run-record appends are requested.  One relaxed atomic load.
inline bool runlog_enabled() {
  return (detail::mask() & detail::kRunLogBit) != 0;
}

/// Runtime override; wins over the environment.  Enabling without a
/// configured path keeps records in the in-memory tail only.
void set_run_log_enabled(bool on);

/// Sets the output path and enables the run log.  An empty path disables
/// file output (records still reach the in-memory tail).
void set_run_log_path(const std::string& path);

/// Currently configured output path ("" when unset).
std::string run_log_path();

namespace detail {
/// JSON number formatting that stays parseable for non-finite values:
/// finite doubles use %.9g, NaN/±Inf become the strings "NaN"/"Inf"/
/// "-Inf" (legal JSON, and the report tool understands them).
std::string json_number(double v);
std::string json_escape(const std::string& s);
}  // namespace detail

/// Builder for one JSONL record.  Fields appear in insertion order; the
/// constructor stamps `"kind"` and `"t_ms"` (milliseconds since the obs
/// time base) so every record is self-describing and ordered.
class RunRecord {
 public:
  explicit RunRecord(const char* kind);

  RunRecord& field(const char* key, double v);
  RunRecord& field(const char* key, std::int64_t v);
  RunRecord& field(const char* key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  RunRecord& field(const char* key, std::size_t v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  RunRecord& field(const char* key, bool v);
  RunRecord& field(const char* key, const char* v);
  RunRecord& field(const char* key, const std::string& v) {
    return field(key, v.c_str());
  }
  /// Splices a pre-built JSON value (object/array) verbatim.
  RunRecord& raw(const char* key, const std::string& json);

  /// The record as a single JSON object (no trailing newline).
  std::string json() const;

 private:
  void key(const char* k);
  std::ostringstream os_;
  bool first_ = true;
};

/// Appends one record line to the configured run log.  Thread-safe; the
/// file opens lazily in append mode and each line is flushed so external
/// watchers (tests, tail -f) see records immediately.  No-op when the
/// run log is disabled.
void append_run_record(const RunRecord& record);

/// Last `max_records` record lines appended in this process (newest
/// last), for tests and tools that want records without file I/O.
std::string run_log_tail(std::size_t max_records);

/// Drops the in-memory tail and closes the current file handle (the
/// next append reopens the configured path).  Used by tests switching
/// output paths.
void reset_run_log();

}  // namespace mmhand::obs
