#pragma once

// Numerical-health watchdog: catches NaN/Inf/explosion at the step that
// produced it instead of at the end of a ruined training run.
//
// The mode resolves lazily from `MMHAND_NUMERIC_CHECK=off|warn|fatal`
// (default `off`) or the runtime setter:
//   - `off`   — `numeric_check_enabled()` is one relaxed atomic load and
//               a branch; no stats pass runs anywhere;
//   - `warn`  — anomalies log at warn level, bump the
//               `obs/numeric.anomalies` counter (plus a per-kind
//               counter), and append a run-log record when the run log
//               is on; execution continues;
//   - `fatal` — the first anomaly raises `mmhand::Error` through
//               MMHAND_CHECK, pointing at the reporting site.
// Checking is read-only: enabling the watchdog never changes any
// numeric output, only whether bad numbers are noticed.

#include <cstddef>
#include <string>

namespace mmhand::obs {

enum class NumericCheckMode : int {
  kOff = 0,
  kWarn = 1,
  kFatal = 2,
};

/// Currently effective mode (resolving the environment on first call).
NumericCheckMode numeric_check_mode();

/// Runtime override; wins over `MMHAND_NUMERIC_CHECK`.
void set_numeric_check_mode(NumericCheckMode mode);

/// True when any checking is requested.  One relaxed atomic load.
bool numeric_check_enabled();

/// Reports one detected anomaly.  `site` names the instrumented code
/// location (`nn/adam.grad`, `pose/train.loss`, ...), `what` the anomaly
/// class (`nan`, `inf`, `explosion`), and `detail` is a short free-form
/// description (parameter name, offending value).  Behavior depends on
/// the mode above; in `off` mode this is a no-op, but callers should
/// gate their detection pass on `numeric_check_enabled()` anyway.
void report_numeric_anomaly(const char* site, const char* what,
                            const std::string& detail);

/// Convenience check for a scalar (loss, activation summary): reports
/// `nan`/`inf` at `site` when `v` is not finite.  Returns true when `v`
/// was finite.  Callers gate on `numeric_check_enabled()`.
bool check_finite_scalar(const char* site, double v,
                         const std::string& detail);

/// Total anomalies reported so far in this process (all sites).
std::int64_t numeric_anomaly_count();

}  // namespace mmhand::obs
