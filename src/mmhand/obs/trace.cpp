#include "mmhand/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"

namespace mmhand::obs {

namespace {

/// Cap per-thread capture so a forgotten MMHAND_TRACE on a long training
/// run cannot exhaust memory (~32 MB/thread at this cap).
constexpr std::size_t kMaxEventsPerThread = 1 << 20;

struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
};

/// One buffer per thread.  The owning thread appends under `mu` (always
/// uncontended except while a flush is copying), so `write_trace` can run
/// at any time without tearing events.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  unsigned tid = 0;
  std::uint64_t dropped = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

TraceRegistry& trace_registry() {
  static TraceRegistry r;
  return r;
}

TraceBuffer& local_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buf = [] {
    auto b = std::make_shared<TraceBuffer>();
    b->tid = detail::thread_id();
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

void set_tracing_enabled(bool on) {
  detail::set_mask_bit(detail::kTraceBit, on);
  if (on) detail::touch_trace_registry();
}

void set_trace_path(const std::string& path) {
  detail::set_trace_path(path);
}

Histogram& SpanSite::hist() {
  Histogram* h = hist_.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &histogram(name_);
    hist_.store(h, std::memory_order_release);
  }
  return *h;
}

namespace detail {

void record_span(SpanSite& site, std::int64_t t0_ns, std::int64_t t1_ns,
                 int mask) {
  if ((mask & kTraceBit) != 0) {
    TraceBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lk(buf.mu);
    if (buf.events.size() < kMaxEventsPerThread)
      buf.events.push_back({site.name(), t0_ns, t1_ns - t0_ns});
    else
      ++buf.dropped;
  }
  if ((mask & kMetricsBit) != 0)
    site.hist().record(static_cast<double>(t1_ns - t0_ns) / 1000.0);
  if ((mask & kFlightBit) != 0) flight_span_event(site, false, t1_ns);
}

void touch_trace_registry() { (void)trace_registry(); }

}  // namespace detail

bool write_trace() {
  const std::string path = detail::trace_path();
  if (path.empty()) {
    MMHAND_WARN("write_trace: no trace path configured "
                "(MMHAND_TRACE or set_trace_path)");
    return false;
  }
  return write_trace(path);
}

bool write_trace(const std::string& path) {
  struct Row {
    TraceEvent ev;
    unsigned tid;
  };
  std::vector<Row> rows;
  std::uint64_t dropped = 0;
  {
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& buf : r.buffers) {
      std::lock_guard<std::mutex> blk(buf->mu);
      for (const TraceEvent& ev : buf->events)
        rows.push_back({ev, buf->tid});
      dropped += buf->dropped;
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.ev.ts_ns < b.ev.ts_ns;
  });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MMHAND_WARN("cannot write trace to %s", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        f,
        "%s\n{\"name\": \"%s\", \"cat\": \"mmhand\", \"ph\": \"X\", "
        "\"pid\": 1, \"tid\": %u, \"ts\": %lld.%03lld, "
        "\"dur\": %lld.%03lld}",
        i == 0 ? "" : ",", escape(row.ev.name).c_str(), row.tid,
        static_cast<long long>(row.ev.ts_ns / 1000),
        static_cast<long long>(row.ev.ts_ns % 1000),
        static_cast<long long>(row.ev.dur_ns / 1000),
        static_cast<long long>(row.ev.dur_ns % 1000));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  if (dropped > 0)
    MMHAND_WARN("trace %s is incomplete: %llu spans dropped at the "
                "per-thread buffer cap",
                path.c_str(), static_cast<unsigned long long>(dropped));
  MMHAND_DEBUG("wrote %zu spans to %s", rows.size(), path.c_str());
  return true;
}

void clear_trace() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace mmhand::obs
