#include "mmhand/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "mmhand/obs/context.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"

namespace mmhand::obs {

namespace {

/// Cap per-thread capture so a forgotten MMHAND_TRACE on a long training
/// run cannot exhaust memory (~48 MB/thread at this cap).
constexpr std::size_t kMaxEventsPerThread = 1 << 20;

enum FlowKind : std::uint8_t {
  kFlowNone = 0,
  kFlowSource,  ///< frame-context anchor; emitted as a `ph:"s"` row only
  kFlowTarget,  ///< cross-thread child; emitted as its slice plus `ph:"f"`
};

struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  std::uint64_t trace_id;  ///< 0 when no frame context was live
  std::int64_t frame_id;
  std::uint8_t flow;
};

/// One buffer per thread.  The owning thread appends under `mu` (always
/// uncontended except while a flush is copying), so `write_trace` can run
/// at any time without tearing events.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  unsigned tid = 0;
  std::uint64_t dropped = 0;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
};

TraceRegistry& trace_registry() {
  static TraceRegistry r;
  return r;
}

TraceBuffer& local_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buf = [] {
    auto b = std::make_shared<TraceBuffer>();
    b->tid = detail::thread_id();
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
  return out;
}

}  // namespace

void set_tracing_enabled(bool on) {
  detail::set_mask_bit(detail::kTraceBit, on);
  if (on) detail::touch_trace_registry();
}

void set_trace_path(const std::string& path) {
  detail::set_trace_path(path);
}

Histogram& SpanSite::hist() {
  Histogram* h = hist_.load(std::memory_order_acquire);
  if (h == nullptr) {
    h = &histogram(name_);
    hist_.store(h, std::memory_order_release);
  }
  return *h;
}

namespace detail {

void record_span(SpanSite& site, std::int64_t t0_ns, std::int64_t t1_ns,
                 int mask, const PmuReading& pmu_begin) {
  FrameContext* ctx = current_frame_context();
  if ((mask & kTraceBit) != 0) {
    const bool cross_thread =
        ctx != nullptr && site.flow_target() && thread_id() != ctx->origin_tid;
    TraceBuffer& buf = local_buffer();
    std::lock_guard<std::mutex> lk(buf.mu);
    if (buf.events.size() < kMaxEventsPerThread)
      buf.events.push_back({site.name(), t0_ns, t1_ns - t0_ns,
                            ctx != nullptr ? ctx->trace_id : 0,
                            ctx != nullptr ? ctx->frame_id : -1,
                            cross_thread ? kFlowTarget : kFlowNone});
    else
      ++buf.dropped;
  }
  if ((mask & kMetricsBit) != 0)
    site.hist().record(static_cast<double>(t1_ns - t0_ns) / 1000.0);
  if ((mask & kPmuBit) != 0) pmu_accumulate(site, pmu_begin);
  if ((mask & kFlightBit) != 0) flight_span_event(site, false, t1_ns);
  if (ctx != nullptr) ctx->note_stage(site.name(), t1_ns - t0_ns);
}

void record_flow_source(const char* label, std::uint64_t trace_id,
                        std::int64_t frame_id, std::int64_t t_ns) {
  TraceBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  if (buf.events.size() < kMaxEventsPerThread)
    buf.events.push_back({label, t_ns, 0, trace_id, frame_id, kFlowSource});
  else
    ++buf.dropped;
}

void touch_trace_registry() { (void)trace_registry(); }

}  // namespace detail

bool write_trace() {
  const std::string path = detail::trace_path();
  if (path.empty()) {
    MMHAND_WARN("write_trace: no trace path configured "
                "(MMHAND_TRACE or set_trace_path)");
    return false;
  }
  return write_trace(path);
}

bool write_trace(const std::string& path) {
  struct Row {
    TraceEvent ev;
    unsigned tid;
  };
  std::vector<Row> rows;
  std::uint64_t dropped = 0;
  {
    TraceRegistry& r = trace_registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& buf : r.buffers) {
      std::lock_guard<std::mutex> blk(buf->mu);
      for (const TraceEvent& ev : buf->events)
        rows.push_back({ev, buf->tid});
      dropped += buf->dropped;
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.ev.ts_ns < b.ev.ts_ns;
  });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    MMHAND_WARN("cannot write trace to %s", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  bool first = true;
  const auto sep = [&] {
    const char* s = first ? "" : ",";
    first = false;
    return s;
  };
  for (const Row& row : rows) {
    // Frame-context tagging: every span recorded under a live context
    // carries the trace/frame ids so slices are attributable per frame.
    char args[96] = "";
    if (row.ev.trace_id != 0)
      std::snprintf(args, sizeof(args),
                    ", \"args\": {\"trace_id\": %llu, \"frame_id\": %lld}",
                    static_cast<unsigned long long>(row.ev.trace_id),
                    static_cast<long long>(row.ev.frame_id));
    if (row.ev.flow != kFlowSource)
      std::fprintf(
          f,
          "%s\n{\"name\": \"%s\", \"cat\": \"mmhand\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %u, \"ts\": %lld.%03lld, "
          "\"dur\": %lld.%03lld%s}",
          sep(), escape(row.ev.name).c_str(), row.tid,
          static_cast<long long>(row.ev.ts_ns / 1000),
          static_cast<long long>(row.ev.ts_ns % 1000),
          static_cast<long long>(row.ev.dur_ns / 1000),
          static_cast<long long>(row.ev.dur_ns % 1000), args);
    // Flow events: one `s` anchor per frame context (inside the frame
    // span on its origin thread), one `f` per cross-thread child slice.
    // Viewers match them by (cat, name, id), drawing an arrow from the
    // frame slice to each worker slice.
    if (row.ev.flow == kFlowSource)
      std::fprintf(
          f,
          "%s\n{\"name\": \"frame\", \"cat\": \"mmhand_flow\", "
          "\"ph\": \"s\", \"id\": %llu, \"pid\": 1, \"tid\": %u, "
          "\"ts\": %lld.%03lld%s}",
          sep(), static_cast<unsigned long long>(row.ev.trace_id), row.tid,
          static_cast<long long>(row.ev.ts_ns / 1000),
          static_cast<long long>(row.ev.ts_ns % 1000), args);
    else if (row.ev.flow == kFlowTarget)
      std::fprintf(
          f,
          ",\n{\"name\": \"frame\", \"cat\": \"mmhand_flow\", "
          "\"ph\": \"f\", \"bp\": \"e\", \"id\": %llu, \"pid\": 1, "
          "\"tid\": %u, \"ts\": %lld.%03lld%s}",
          static_cast<unsigned long long>(row.ev.trace_id), row.tid,
          static_cast<long long>(row.ev.ts_ns / 1000),
          static_cast<long long>(row.ev.ts_ns % 1000), args);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  if (dropped > 0)
    MMHAND_WARN("trace %s is incomplete: %llu spans dropped at the "
                "per-thread buffer cap",
                path.c_str(), static_cast<unsigned long long>(dropped));
  MMHAND_DEBUG("wrote %zu spans to %s", rows.size(), path.c_str());
  return true;
}

void clear_trace() {
  TraceRegistry& r = trace_registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace mmhand::obs
