#pragma once

// Internal shared state of the observability layer — not part of the
// public API.  Holds the lazily-initialized enable mask (one relaxed
// atomic gates every disabled-path check), the process time base, and
// the per-thread shard index used by metrics and trace buffers.

#include <atomic>
#include <cstdint>
#include <string>

namespace mmhand::obs::detail {

inline constexpr int kTraceBit = 1;
inline constexpr int kMetricsBit = 2;
inline constexpr int kRunLogBit = 4;
inline constexpr int kFlightBit = 8;
inline constexpr int kTelemetryBit = 16;
inline constexpr int kPmuBit = 32;

/// Number of metric shards.  Threads map onto shards round-robin; more
/// threads than shards only costs occasional cache-line sharing, never
/// correctness.
inline constexpr unsigned kShards = 16;

/// The enable mask; -1 until the environment has been consulted.
std::atomic<int>& mask_atomic();

/// Resolves the mask, reading MMHAND_TRACE / MMHAND_METRICS /
/// MMHAND_RUN_LOG exactly once per process.
int init_mask();

/// Current mask, lazily initialized.  The fast path when observability is
/// off is this one relaxed load plus a compare.
inline int mask() {
  int m = mask_atomic().load(std::memory_order_relaxed);
  if (m < 0) m = init_mask();
  return m;
}

void set_mask_bit(int bit, bool on);

/// Nanoseconds since the first observability call in this process.
std::int64_t now_ns();

/// Stable small integer id of the calling thread (assigned on first use).
unsigned thread_id();

inline unsigned shard_id() { return thread_id() % kShards; }

/// Output paths configured via environment or setters ("" when unset).
std::string trace_path();
void set_trace_path(const std::string& path);
std::string metrics_path();
void set_metrics_path(const std::string& path);
std::string run_log_path_raw();
void set_run_log_path_raw(const std::string& path);

/// Raw MMHAND_TELEMETRY / MMHAND_FLIGHT spec strings ("" when unset).
/// Parsing lives in obs/telemetry and obs/flight; state only stores the
/// text so every environment read stays in this TU.
std::string telemetry_spec_raw();
std::string flight_spec_raw();

/// Implemented in telemetry.cpp / flight.cpp: start the sampler thread /
/// map the ring file when the corresponding mask bit resolved on.
/// Called outside the call_once body (idempotent, guarded internally).
void telemetry_on_mask_init();
void flight_on_mask_init();

/// One group read of the hardware counters attached to the calling
/// thread (implemented in pmu.cpp).  `ok` is false when PMU profiling is
/// off or `perf_event_open` is unavailable; values are raw cumulative
/// counts, meaningful only as begin/end deltas on the same thread.
struct PmuReading {
  bool ok = false;
  std::uint64_t v[5] = {0, 0, 0, 0, 0};
};
PmuReading pmu_read();

/// Resolves MMHAND_PMU (in pmu.cpp, the one sanctioned perf_event TU)
/// and returns the mask bits it implies: kPmuBit | kMetricsBit when
/// enabled, 0 otherwise.  Called once from init_mask.
int pmu_mask_bits();

/// Installs the thread-pool task-context hooks that propagate frame
/// contexts to workers (implemented in context.cpp; idempotent).
void context_install_hooks();

}  // namespace mmhand::obs::detail
