#pragma once

// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// latency histograms with percentile estimation.
//
// Hot-path cost model:
//   - disabled: callers gate on `metrics_enabled()` — one relaxed atomic
//     load, no allocation, no formatting;
//   - enabled: each metric is sharded per thread (round-robin onto
//     `detail::kShards` cache-line-aligned slots), so recording from
//     inside a `parallel_for` never serializes the pool.  Shards are
//     merged only at report time.
// Lookup by name (`counter("nn/gemm.calls")`) takes a registry mutex;
// call it once and cache the reference (e.g. in a function-local static).
// References stay valid for the life of the process; `reset_metrics()`
// zeroes values but never invalidates handles.
//
// Histograms use 64 geometric buckets (ratio sqrt(2)) from 1 upward, so
// they cover ~9 decades; span-fed histograms record microseconds.
// Percentiles interpolate linearly inside a bucket and are clamped to
// the observed [min, max], which makes the single-sample and all-equal
// cases exact.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "mmhand/obs/state.hpp"

namespace mmhand::obs {

/// True when metric recording is requested (`MMHAND_METRICS=<path>` or
/// `set_metrics_enabled(true)`).  One relaxed atomic load.
inline bool metrics_enabled() {
  return (detail::mask() & detail::kMetricsBit) != 0;
}

/// Runtime override; wins over the environment.
void set_metrics_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t delta) {
    slots_[detail::shard_id()].v.fetch_add(delta,
                                           std::memory_order_relaxed);
  }
  std::int64_t value() const;
  void reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Slot, detail::kShards> slots_{};
};

/// Last-write-wins scalar (loss, learning rate, ...).
class Gauge {
 public:
  void set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct HistogramSnapshot;

/// Fixed-bucket distribution of non-negative values.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double value);
  /// Merged snapshot across shards.  All-zero when empty.
  HistogramStats stats() const;
  /// Single percentile (q in [0, 100]) from a merged snapshot.
  double percentile(double q) const;
  /// Raw merged bucket counts (the unit the telemetry sampler diffs
  /// between intervals for windowed percentiles).
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};
    std::atomic<std::uint64_t> min_bits{
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::max())};
    std::atomic<std::uint64_t> max_bits{
        std::bit_cast<std::uint64_t>(std::numeric_limits<double>::lowest())};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Raw merged histogram state.  `min`/`max` are the lifetime extremes;
/// a windowed delta reconstructs its extremes from the occupied bucket
/// bounds (see `snapshot_delta`).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

/// `cur - prev`, elementwise on count/sum/buckets.  The window's
/// min/max are approximated by the bounds of its lowest and highest
/// occupied buckets (clamped to `cur`'s lifetime extremes), which keeps
/// the interpolated windowed percentiles inside the observed range.
HistogramSnapshot snapshot_delta(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev);

/// Mean + interpolated p50/p95/p99 of any snapshot (full or windowed).
HistogramStats snapshot_stats(const HistogramSnapshot& s);

/// One pass over the registry: every metric's current value, sorted by
/// name (map order).  Relaxed reads — values racing with writers land
/// in this or the next sample, never torn.
struct MetricsSample {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};
MetricsSample sample_metrics();

/// Finds or creates a metric by name.  Takes the registry mutex; cache
/// the returned reference on hot paths.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// All registered metrics as a JSON object
/// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
std::string metrics_json();

/// Writes `metrics_json()` to `path`; false (with a warning log) on I/O
/// failure.
bool write_metrics(const std::string& path);

/// Zeroes every registered metric (handles stay valid).
void reset_metrics();

namespace detail {
/// Forces the registry's static storage into existence (ordering
/// guarantee for the atexit dump).
void touch_metrics_registry();
}  // namespace detail

}  // namespace mmhand::obs
