#pragma once

// Umbrella header for the observability layer: scoped trace spans
// (trace.hpp), the metrics registry (metrics.hpp), leveled logging
// (log.hpp), JSONL run records (runlog.hpp), the numerical-health
// watchdog (numeric.hpp), the continuous-telemetry sampler
// (telemetry.hpp) with its latency budgets (budget.hpp), the crash
// flight recorder (flight.hpp), per-frame causal tracing (context.hpp),
// and hardware perf-counter spans (pmu.hpp).  Everything is controlled
// by environment variables resolved lazily on first use —
//
//   MMHAND_TRACE=<path>         capture spans, write Chrome trace JSON at exit
//   MMHAND_METRICS=<path>       record metrics, write a JSON snapshot at exit
//   MMHAND_LOG_LEVEL=<level>    silent|warn|info|debug (default info)
//   MMHAND_RUN_LOG=<path>       append training/eval run records as JSONL
//   MMHAND_NUMERIC_CHECK=<mode> off|warn|fatal NaN/Inf watchdog (default off)
//   MMHAND_TELEMETRY=<spec>     <interval_ms>[,out=PATH][,om=PATH]
//                               [,budgets=PATH][,ring=N] time-series sampler
//   MMHAND_FLIGHT=<spec>        <path>[,slots=N] crash flight recorder
//   MMHAND_PMU=1                attach perf_event hardware counters to spans
//                               (implies metrics; clock-only fallback when
//                               perf_event is unavailable)
//
// — or by the runtime setters, which win over the environment.  With
// everything off, every instrumentation point costs one relaxed atomic
// load; nothing allocates, formats, or takes a lock, and no numeric
// output ever depends on whether observability is enabled.

#include "mmhand/obs/budget.hpp"
#include "mmhand/obs/context.hpp"
#include "mmhand/obs/flight.hpp"
#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/numeric.hpp"
#include "mmhand/obs/pmu.hpp"
#include "mmhand/obs/runlog.hpp"
#include "mmhand/obs/telemetry.hpp"
#include "mmhand/obs/trace.hpp"
