#pragma once

// Umbrella header for the observability layer: scoped trace spans
// (trace.hpp), the metrics registry (metrics.hpp), and leveled logging
// (log.hpp).  Everything is controlled by environment variables resolved
// lazily on first use —
//
//   MMHAND_TRACE=<path>      capture spans, write Chrome trace JSON at exit
//   MMHAND_METRICS=<path>    record metrics, write a JSON snapshot at exit
//   MMHAND_LOG_LEVEL=<level> silent|warn|info|debug (default info)
//
// — or by the runtime setters, which win over the environment.  With
// everything off, every instrumentation point costs one relaxed atomic
// load; nothing allocates, formats, or takes a lock, and no numeric
// output ever depends on whether observability is enabled.

#include "mmhand/obs/log.hpp"
#include "mmhand/obs/metrics.hpp"
#include "mmhand/obs/trace.hpp"
