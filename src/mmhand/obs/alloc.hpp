#pragma once

// Heap-allocation tracking: a debug interposer over the global
// `operator new` / `operator delete` family that counts allocations,
// frees, and requested bytes in process-wide relaxed atomics.
//
// The runtime half of the purity story (`mmhand_lint --purity` is the
// static half): scripts/check_purity.sh runs warmed-up pipeline frames
// with tracking on and asserts the per-frame allocation delta is zero,
// which catches what a token-level analyzer cannot see (value-returned
// temporaries, allocation inside opaque calls).
//
// Tracking is off by default and gated by one constant-initialized
// relaxed atomic, so the disabled interposer adds a single predictable
// branch over the plain allocator and changes no allocation behavior.
// Enable it per process with MMHAND_ALLOC_TRACK=1 (read in state.cpp
// with the other MMHAND_* switches) or at runtime with
// `set_alloc_tracking(true)`.

#include <cstdint>

namespace mmhand::obs {

struct AllocCounts {
  std::int64_t allocs = 0;  ///< operator-new calls while tracking
  std::int64_t frees = 0;   ///< operator-delete calls while tracking
  std::int64_t bytes = 0;   ///< total requested bytes while tracking
};

/// Turns allocation counting on or off (idempotent, thread-safe).
void set_alloc_tracking(bool on);

/// True when allocation counting is currently on.
bool alloc_tracking_enabled();

/// Snapshot of the process-wide counters.  Counters are cumulative and
/// never reset; measure an interval by differencing two snapshots.
AllocCounts alloc_counts();

}  // namespace mmhand::obs
