#include "mmhand/obs/budget.hpp"

#include <fstream>
#include <sstream>

#include "mmhand/common/json.hpp"

namespace mmhand::obs {

namespace {

bool matches(const std::string& pattern, const std::string& stage) {
  if (!pattern.empty() && pattern.back() == '*')
    return stage.rfind(pattern.substr(0, pattern.size() - 1), 0) == 0;
  return pattern == stage;
}

}  // namespace

BudgetSet BudgetSet::from_json(const std::string& text, std::string* error) {
  BudgetSet out;
  std::string parse_error;
  const json::Value root = json::Value::parse(text, &parse_error);
  if (!parse_error.empty()) {
    if (error != nullptr) *error = "budgets: " + parse_error;
    return out;
  }
  const json::Value* budgets = root.find("budgets");
  if (budgets == nullptr || !budgets->is_array()) {
    if (error != nullptr)
      *error = "budgets: top level must be {\"budgets\": [...]}";
    return out;
  }
  for (const json::Value& item : budgets->as_array()) {
    if (!item.is_object()) {
      if (error != nullptr) *error = "budgets: entries must be objects";
      out.rules_.clear();
      return out;
    }
    BudgetRule rule;
    rule.stage = item.string_or("stage", "");
    if (rule.stage.empty()) {
      if (error != nullptr)
        *error = "budgets: every entry needs a non-empty \"stage\"";
      out.rules_.clear();
      return out;
    }
    rule.max_mean_us = item.number_or("max_mean_us", 0.0);
    rule.max_p50_us = item.number_or("max_p50_us", 0.0);
    rule.max_p95_us = item.number_or("max_p95_us", 0.0);
    rule.max_p99_us = item.number_or("max_p99_us", 0.0);
    out.rules_.push_back(std::move(rule));
  }
  return out;
}

BudgetSet BudgetSet::from_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "budgets: cannot read " + path;
    return BudgetSet{};
  }
  std::ostringstream os;
  os << in.rdbuf();
  return from_json(os.str(), error);
}

const BudgetRule* BudgetSet::rule_for(const std::string& stage) const {
  for (const BudgetRule& rule : rules_)
    if (matches(rule.stage, stage)) return &rule;
  return nullptr;
}

std::vector<BudgetBreach> BudgetSet::check(
    const std::string& stage, const HistogramStats& window) const {
  std::vector<BudgetBreach> breaches;
  if (window.count == 0) return breaches;
  const BudgetRule* rule = rule_for(stage);
  if (rule == nullptr) return breaches;
  const auto apply = [&](const char* field, double limit, double actual) {
    if (limit > 0.0 && actual > limit)
      breaches.push_back(BudgetBreach{stage, field, limit, actual});
  };
  apply("mean_us", rule->max_mean_us, window.mean);
  apply("p50_us", rule->max_p50_us, window.p50);
  apply("p95_us", rule->max_p95_us, window.p95);
  apply("p99_us", rule->max_p99_us, window.p99);
  return breaches;
}

}  // namespace mmhand::obs
