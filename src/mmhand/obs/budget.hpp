#pragma once

// Declarative per-stage latency budgets, evaluated by the telemetry
// sampler against each interval's windowed histogram stats.
//
// Budgets live in a JSON file (scripts/latency_budgets.json):
//
//   {"budgets": [
//     {"stage": "radar/process_frame", "max_mean_us": 5000,
//      "max_p95_us": 20000},
//     {"stage": "nn/*", "max_p99_us": 500000}
//   ]}
//
// A rule matches a stage histogram by exact name, or by prefix when the
// pattern ends in '*'.  Any `max_*` field left out (or <= 0) is
// unchecked.  Every interval in which a matched window exceeds a limit
// produces a BudgetBreach, which the sampler turns into
// `obs/budget.breaches` counters and a pass/fail gate for CI.

#include <string>
#include <vector>

#include "mmhand/obs/metrics.hpp"

namespace mmhand::obs {

struct BudgetRule {
  std::string stage;       ///< exact name, or prefix + trailing '*'
  double max_mean_us = 0;  ///< 0 = unchecked
  double max_p50_us = 0;
  double max_p95_us = 0;
  double max_p99_us = 0;
};

struct BudgetBreach {
  std::string stage;  ///< histogram name that breached
  std::string field;  ///< "mean_us" | "p50_us" | "p95_us" | "p99_us"
  double limit = 0;
  double actual = 0;
};

class BudgetSet {
 public:
  /// Parses the JSON grammar above.  On malformed input returns an
  /// empty set and fills `*error` (when non-null).
  static BudgetSet from_json(const std::string& text, std::string* error);
  /// `from_json` over a file's contents; missing file is an error.
  static BudgetSet from_file(const std::string& path, std::string* error);

  bool empty() const { return rules_.empty(); }
  std::size_t size() const { return rules_.size(); }
  const std::vector<BudgetRule>& rules() const { return rules_; }

  /// The first rule matching `stage` (declaration order; exact and
  /// wildcard rules compete equally), or nullptr.
  const BudgetRule* rule_for(const std::string& stage) const;

  /// Breaches of `stage`'s window against its matching rule.  Empty
  /// when no rule matches or the window has no samples.
  std::vector<BudgetBreach> check(const std::string& stage,
                                  const HistogramStats& window) const;

 private:
  std::vector<BudgetRule> rules_;
};

}  // namespace mmhand::obs
