#pragma once

// Backend kernel-table accessors, consumed only by dispatch.cpp.
// Each backend lives in its own translation unit so ISA-specific
// compile flags (-mavx2 -mfma) never leak into code that runs before
// dispatch has checked CPUID.

#include "mmhand/simd/simd.hpp"

namespace mmhand::simd {

/// Width-1 generic-body table; available on every host.
const Kernels& scalar_kernels();

/// AVX2 table, or nullptr when this build does not target x86-64.
/// The caller must still verify CPUID support before using it.
const Kernels* avx2_kernels();

/// NEON table, or nullptr when this build does not target aarch64.
const Kernels* neon_kernels();

}  // namespace mmhand::simd
