#pragma once

// Portable SIMD layer for the DSP hot path.
//
// One function-pointer table (`Kernels`) per instruction set; the
// active table is chosen once by runtime CPU detection and can be
// overridden with the `MMHAND_SIMD` environment variable
// (`auto|avx2|neon|scalar`) or `set_isa()` from tests.  Callers above
// this layer (dsp/, radar/) never touch intrinsics — the
// `simd-confinement` lint rule keeps raw `_mm*`/`vld1q*` identifiers
// inside src/mmhand/simd/.
//
// Data layout: all kernels work on split-complex (SoA) double arrays.
// Lane-batched ("lanes") kernels interleave `width` independent
// signals element-major: element k of lane l lives at [k*width + l],
// so one vector load fetches element k of every lane.  Single-signal
// ("soa") kernels vectorize across the element index instead.
//
// Numerical contract (DESIGN §9): the scalar ISA never reaches these
// kernels — dsp/ batch entry points run the original per-signal code
// verbatim, keeping scalar results bitwise identical to pre-SIMD
// builds.  Vector ISAs may reassociate and fuse (FMA), and agree with
// the scalar path to 1e-9 relative on the parity suite.

#include <cstddef>

namespace mmhand::simd {

enum class Isa {
  kScalar = 0,  ///< reference path; bitwise-stable across builds
  kAvx2 = 1,    ///< x86-64 AVX2+FMA, 4 double lanes
  kNeon = 2,    ///< aarch64 NEON, 2 double lanes
};

/// Stable lowercase name ("scalar", "avx2", "neon") for logs and the
/// bench JSON `simd` field.
const char* isa_name(Isa isa);

/// True when this host can execute `isa`.
bool isa_supported(Isa isa);

/// Highest-throughput ISA this host supports.
Isa best_supported_isa();

/// The ISA in effect: `MMHAND_SIMD` when set to a recognized and
/// supported value, otherwise the best supported ISA.  Unrecognized or
/// unsupported values fall back to auto-detection (mirroring how
/// MMHAND_THREADS ignores garbage).
Isa active_isa();

/// Overrides the active ISA at runtime (parity tests switch between
/// scalar and vector in-process).  Returns false — leaving the active
/// ISA unchanged — when the host cannot execute `isa`.
bool set_isa(Isa isa);

/// One entry per vectorized primitive.  `width` is the lane count of
/// the batched layouts (4 for AVX2, 2 for NEON, 1 for scalar).
struct Kernels {
  int width = 1;

  /// Radix-2 FFT of `width` interleaved signals of power-of-two size
  /// n.  re/im hold n*width doubles in lane-batched layout.  `tw` is
  /// the interleaved forward twiddle table (n/2 complex values,
  /// re,im pairs).  When `inverse`, conjugates the twiddles and
  /// applies the 1/n normalization.
  void (*fft_lanes)(double* re, double* im, std::size_t n, const double* tw,
                    bool inverse);

  /// Radix-2 FFT of one signal of power-of-two size n in SoA form,
  /// vectorized across the butterfly index.  stw_re/stw_im are the
  /// per-stage twiddle tables (n-1 doubles each: stage len=2 first,
  /// len/2 entries per stage, contiguous).
  void (*fft_soa)(double* re, double* im, std::size_t n, const double* stw_re,
                  const double* stw_im, bool inverse);

  /// x[k*width+l] *= b[k] for k < n: complex multiply with a
  /// per-element broadcast factor (chirp/spectrum tables).
  void (*cmul_bcast)(double* re, double* im, const double* b_re,
                     const double* b_im, std::size_t n);

  /// x[j] *= b[j] for j < count: flat elementwise complex multiply.
  void (*cmul)(double* re, double* im, const double* b_re, const double* b_im,
               std::size_t count);

  /// x[k*width+l] *= s[k] for k < n: real broadcast (window apply).
  void (*scale_bcast)(double* re, double* im, const double* s, std::size_t n);

  /// Direct-form-II-transposed biquad cascade over `width` interleaved
  /// real channels: x[t*width+l], t < len.  `coeffs` holds nsec
  /// sections as [b0,b1,b2,a1,a2]; `gain` is applied after the last
  /// section.  dir=+1 filters forward in t, dir=-1 backward (the
  /// filtfilt reverse pass without materializing the reversal).
  void (*sos_lanes)(double* x, std::size_t len, const double* coeffs,
                    std::size_t nsec, double gain, int dir);

  /// out[j] = sqrt(re[j]^2 + im[j]^2) for j < count.
  void (*vmag)(const double* re, const double* im, double* out,
               std::size_t count);
};

/// Kernel table for the active ISA.
const Kernels& kernels();

/// Kernel table for a specific ISA, or nullptr when this build/host
/// cannot run it.  Lets parity tests pin both sides explicitly.
const Kernels* kernels_for(Isa isa);

}  // namespace mmhand::simd
