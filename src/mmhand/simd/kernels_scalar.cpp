#include <cmath>
#include <utility>

#include "mmhand/simd/kernels.hpp"
#include "mmhand/simd/vec_scalar.hpp"

#define MMHAND_SIMD_VEC VScalar
#include "mmhand/simd/kernels_body.inl"
#undef MMHAND_SIMD_VEC

namespace mmhand::simd {

const Kernels& scalar_kernels() { return kTable; }

}  // namespace mmhand::simd
