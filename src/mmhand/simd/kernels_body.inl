// Generic kernel bodies, parameterized over a vector type V
// (vec_scalar/vec_avx2/vec_neon).  Included — not compiled standalone —
// by each kernels_<isa>.cpp after it defines MMHAND_SIMD_VEC to its
// backend type; that TU carries the ISA-specific compile flags, so the
// template bodies here are instantiated exactly once per backend.
//
// Layout conventions match simd.hpp: "lanes" kernels interleave
// V::kWidth signals element-major ([k*W + l]); "soa"/flat kernels run
// over contiguous arrays.

#include <cstddef>

#include "mmhand/common/realtime.hpp"

namespace mmhand::simd {
namespace {

using V = MMHAND_SIMD_VEC;
constexpr int kW = V::kWidth;

/// Bit-reversal permutation over rows of `width` doubles.
inline void bit_reverse_rows(double* re, double* im, std::size_t n,
                             std::size_t width) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      for (std::size_t l = 0; l < width; ++l) {
        std::swap(re[i * width + l], re[j * width + l]);
        std::swap(im[i * width + l], im[j * width + l]);
      }
    }
  }
}

MMHAND_REALTIME
void fft_lanes_impl(double* re, double* im, std::size_t n, const double* tw,
                    bool inverse) {
  bit_reverse_rows(re, im, n, kW);
  // Tables store forward twiddles e^{-2*pi*i*k/n}; the inverse transform
  // conjugates them (matching dsp::fft_pow2_inplace).
  const double ts = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n / len;
    for (std::size_t k = 0; k < half; ++k) {
      const V wr = V::broadcast(tw[2 * (k * stride)]);
      const V wi = V::broadcast(ts * tw[2 * (k * stride) + 1]);
      for (std::size_t i = 0; i < n; i += len) {
        double* ur_p = re + (i + k) * kW;
        double* ui_p = im + (i + k) * kW;
        double* vr_p = re + (i + k + half) * kW;
        double* vi_p = im + (i + k + half) * kW;
        const V ur = V::load(ur_p), ui = V::load(ui_p);
        const V xr = V::load(vr_p), xi = V::load(vi_p);
        const V vr = V::fmsub(xr, wr, xi * wi);  // Re(x*w)
        const V vi = V::fmadd(xr, wi, xi * wr);  // Im(x*w)
        (ur + vr).store(ur_p);
        (ui + vi).store(ui_p);
        (ur - vr).store(vr_p);
        (ui - vi).store(vi_p);
      }
    }
  }
  if (inverse) {
    const V s = V::broadcast(1.0 / static_cast<double>(n));
    for (std::size_t j = 0; j < n * kW; j += kW) {
      (V::load(re + j) * s).store(re + j);
      (V::load(im + j) * s).store(im + j);
    }
  }
}

MMHAND_REALTIME
void fft_soa_impl(double* re, double* im, std::size_t n, const double* stw_re,
                  const double* stw_im, bool inverse) {
  bit_reverse_rows(re, im, n, 1);
  const double ts = inverse ? -1.0 : 1.0;  // conjugate forward twiddles
  std::size_t off = 0;  // start of this stage's twiddle block
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      std::size_t k = 0;
      for (; k + kW <= half; k += kW) {
        const V wr = V::load(stw_re + off + k);
        V wi = V::load(stw_im + off + k);
        if (inverse) wi = V::zero() - wi;
        double* ur_p = re + i + k;
        double* ui_p = im + i + k;
        double* vr_p = re + i + k + half;
        double* vi_p = im + i + k + half;
        const V ur = V::load(ur_p), ui = V::load(ui_p);
        const V xr = V::load(vr_p), xi = V::load(vi_p);
        const V vr = V::fmsub(xr, wr, xi * wi);
        const V vi = V::fmadd(xr, wi, xi * wr);
        (ur + vr).store(ur_p);
        (ui + vi).store(ui_p);
        (ur - vr).store(vr_p);
        (ui - vi).store(vi_p);
      }
      for (; k < half; ++k) {
        const double wr = stw_re[off + k];
        const double wi = ts * stw_im[off + k];
        const double xr = re[i + k + half], xi = im[i + k + half];
        const double vr = xr * wr - xi * wi;
        const double vi = xr * wi + xi * wr;
        const double ur = re[i + k], ui = im[i + k];
        re[i + k] = ur + vr;
        im[i + k] = ui + vi;
        re[i + k + half] = ur - vr;
        im[i + k + half] = ui - vi;
      }
    }
    off += half;
  }
  if (inverse) {
    const double s = 1.0 / static_cast<double>(n);
    const V vs = V::broadcast(s);
    std::size_t j = 0;
    for (; j + kW <= n; j += kW) {
      (V::load(re + j) * vs).store(re + j);
      (V::load(im + j) * vs).store(im + j);
    }
    for (; j < n; ++j) {
      re[j] *= s;
      im[j] *= s;
    }
  }
}

MMHAND_REALTIME
void cmul_bcast_impl(double* re, double* im, const double* b_re,
                     const double* b_im, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const V br = V::broadcast(b_re[k]);
    const V bi = V::broadcast(b_im[k]);
    double* pr = re + k * kW;
    double* pi = im + k * kW;
    const V xr = V::load(pr), xi = V::load(pi);
    V::fmsub(xr, br, xi * bi).store(pr);
    V::fmadd(xr, bi, xi * br).store(pi);
  }
}

MMHAND_REALTIME
void cmul_impl(double* re, double* im, const double* b_re, const double* b_im,
               std::size_t count) {
  std::size_t j = 0;
  for (; j + kW <= count; j += kW) {
    const V br = V::load(b_re + j), bi = V::load(b_im + j);
    const V xr = V::load(re + j), xi = V::load(im + j);
    V::fmsub(xr, br, xi * bi).store(re + j);
    V::fmadd(xr, bi, xi * br).store(im + j);
  }
  for (; j < count; ++j) {
    const double xr = re[j], xi = im[j];
    re[j] = xr * b_re[j] - xi * b_im[j];
    im[j] = xr * b_im[j] + xi * b_re[j];
  }
}

MMHAND_REALTIME
void scale_bcast_impl(double* re, double* im, const double* s, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const V vs = V::broadcast(s[k]);
    (V::load(re + k * kW) * vs).store(re + k * kW);
    (V::load(im + k * kW) * vs).store(im + k * kW);
  }
}

MMHAND_REALTIME
void sos_lanes_impl(double* x, std::size_t len, const double* coeffs,
                    std::size_t nsec, double gain, int dir) {
  const std::ptrdiff_t step =
      dir >= 0 ? static_cast<std::ptrdiff_t>(kW)
               : -static_cast<std::ptrdiff_t>(kW);
  double* start = dir >= 0 ? x : x + (len - 1) * kW;
  for (std::size_t s = 0; s < nsec; ++s) {
    const V b0 = V::broadcast(coeffs[5 * s + 0]);
    const V b1 = V::broadcast(coeffs[5 * s + 1]);
    const V b2 = V::broadcast(coeffs[5 * s + 2]);
    const V a1 = V::broadcast(coeffs[5 * s + 3]);
    const V a2 = V::broadcast(coeffs[5 * s + 4]);
    V z1 = V::zero(), z2 = V::zero();
    double* p = start;
    for (std::size_t t = 0; t < len; ++t, p += step) {
      const V in = V::load(p);
      const V out = V::fmadd(b0, in, z1);
      z1 = V::fmadd(b1, in, z2) - a1 * out;
      z2 = V::fmsub(b2, in, a2 * out);
      out.store(p);
    }
  }
  const V g = V::broadcast(gain);
  for (std::size_t j = 0; j < len * kW; j += kW)
    (V::load(x + j) * g).store(x + j);
}

MMHAND_REALTIME
void vmag_impl(const double* re, const double* im, double* out,
               std::size_t count) {
  std::size_t j = 0;
  for (; j + kW <= count; j += kW) {
    const V xr = V::load(re + j), xi = V::load(im + j);
    V::sqrt(V::fmadd(xr, xr, xi * xi)).store(out + j);
  }
  for (; j < count; ++j)
    out[j] = std::sqrt(re[j] * re[j] + im[j] * im[j]);
}

const Kernels kTable = {
    kW,           fft_lanes_impl, fft_soa_impl, cmul_bcast_impl,
    cmul_impl,    scale_bcast_impl, sos_lanes_impl, vmag_impl,
};

}  // namespace
}  // namespace mmhand::simd
