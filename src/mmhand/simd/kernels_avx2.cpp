// Compiled with per-file -mavx2 -mfma on x86-64 (see src/CMakeLists.txt);
// dispatch.cpp only hands out this table after CPUID confirms support,
// so the rest of the binary stays runnable on baseline hardware.

#include <cmath>
#include <utility>

#include "mmhand/simd/kernels.hpp"
#include "mmhand/simd/vec_avx2.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#define MMHAND_SIMD_VEC VAvx2
#include "mmhand/simd/kernels_body.inl"
#undef MMHAND_SIMD_VEC

namespace mmhand::simd {

const Kernels* avx2_kernels() { return &kTable; }

}  // namespace mmhand::simd

#else

namespace mmhand::simd {

const Kernels* avx2_kernels() { return nullptr; }

}  // namespace mmhand::simd

#endif
