// NEON lane kernels; real contents only on aarch64 builds.

#include <cmath>
#include <utility>

#include "mmhand/simd/kernels.hpp"
#include "mmhand/simd/vec_neon.hpp"

#if defined(__aarch64__)

#define MMHAND_SIMD_VEC VNeon
#include "mmhand/simd/kernels_body.inl"
#undef MMHAND_SIMD_VEC

namespace mmhand::simd {

const Kernels* neon_kernels() { return &kTable; }

}  // namespace mmhand::simd

#else

namespace mmhand::simd {

const Kernels* neon_kernels() { return nullptr; }

}  // namespace mmhand::simd

#endif
