#pragma once

// AVX2 backend: 4 double lanes.  The whole header is guarded on
// __AVX2__ so it stays self-contained in translation units compiled
// without -mavx2 (the header-lint gate builds every header standalone
// with the base toolchain flags); only kernels_avx2.cpp, which gets
// per-file -mavx2 -mfma, sees the contents.

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstddef>

namespace mmhand::simd {

struct VAvx2 {
  static constexpr int kWidth = 4;
  __m256d v;

  static VAvx2 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static VAvx2 broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static VAvx2 zero() { return {_mm256_setzero_pd()}; }

  friend VAvx2 operator+(VAvx2 a, VAvx2 b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend VAvx2 operator-(VAvx2 a, VAvx2 b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend VAvx2 operator*(VAvx2 a, VAvx2 b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }

  /// a*b + c
  static VAvx2 fmadd(VAvx2 a, VAvx2 b, VAvx2 c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  /// a*b - c
  static VAvx2 fmsub(VAvx2 a, VAvx2 b, VAvx2 c) {
    return {_mm256_fmsub_pd(a.v, b.v, c.v)};
  }
  static VAvx2 sqrt(VAvx2 a) { return {_mm256_sqrt_pd(a.v)}; }
};

}  // namespace mmhand::simd

#endif  // __AVX2__ && __FMA__
