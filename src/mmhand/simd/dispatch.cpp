// Runtime ISA selection.  Reads MMHAND_SIMD once (allowlisted getenv,
// like MMHAND_THREADS in common/parallel), probes the CPU, and pins the
// kernel table; tests flip it afterwards with set_isa().

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "mmhand/simd/kernels.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::simd {

namespace {

bool host_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return avx2_kernels() != nullptr && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Isa::kNeon:
      // aarch64 mandates NEON; presence of the table is the whole check.
      return neon_kernels() != nullptr;
  }
  return false;
}

/// MMHAND_SIMD override, or best-supported when unset, "auto",
/// unrecognized, or naming an ISA this host cannot run.
Isa resolve_initial() {
  const char* s = std::getenv("MMHAND_SIMD");
  if (s != nullptr && *s != '\0') {
    if (std::strcmp(s, "scalar") == 0) return Isa::kScalar;
    if (std::strcmp(s, "avx2") == 0 && host_supports(Isa::kAvx2))
      return Isa::kAvx2;
    if (std::strcmp(s, "neon") == 0 && host_supports(Isa::kNeon))
      return Isa::kNeon;
  }
  return best_supported_isa();
}

std::atomic<int> g_active{-1};

Isa active_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    int expected = -1;
    g_active.compare_exchange_strong(
        expected, static_cast<int>(resolve_initial()),
        std::memory_order_relaxed);
  });
  return static_cast<Isa>(g_active.load(std::memory_order_relaxed));
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool isa_supported(Isa isa) { return host_supports(isa); }

Isa best_supported_isa() {
  if (host_supports(Isa::kAvx2)) return Isa::kAvx2;
  if (host_supports(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

Isa active_isa() {
  const int v = g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<Isa>(v);
  return active_init();
}

bool set_isa(Isa isa) {
  if (!host_supports(isa)) return false;
  active_init();  // complete lazy init so it cannot overwrite this store
  g_active.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

const Kernels* kernels_for(Isa isa) {
  if (!host_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return &scalar_kernels();
    case Isa::kAvx2:
      return avx2_kernels();
    case Isa::kNeon:
      return neon_kernels();
  }
  return nullptr;
}

const Kernels& kernels() {
  const Kernels* k = kernels_for(active_isa());
  return k != nullptr ? *k : scalar_kernels();
}

}  // namespace mmhand::simd
