#pragma once

// Width-1 "vector" backend: plain doubles behind the same interface as
// vec_avx2/vec_neon, so the generic kernel bodies in kernels_body.inl
// instantiate unchanged.  This is the table every host can run; it is
// NOT the bitwise-stable scalar path (dsp/ keeps the original
// per-signal code for that) — it exists so the function-pointer table
// is total and so the generic bodies have a reference instantiation.

#include <cmath>
#include <cstddef>

namespace mmhand::simd {

struct VScalar {
  static constexpr int kWidth = 1;
  double v;

  static VScalar load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static VScalar broadcast(double x) { return {x}; }
  static VScalar zero() { return {0.0}; }

  friend VScalar operator+(VScalar a, VScalar b) { return {a.v + b.v}; }
  friend VScalar operator-(VScalar a, VScalar b) { return {a.v - b.v}; }
  friend VScalar operator*(VScalar a, VScalar b) { return {a.v * b.v}; }

  /// a*b + c
  static VScalar fmadd(VScalar a, VScalar b, VScalar c) {
    return {a.v * b.v + c.v};
  }
  /// a*b - c
  static VScalar fmsub(VScalar a, VScalar b, VScalar c) {
    return {a.v * b.v - c.v};
  }
  static VScalar sqrt(VScalar a) { return {std::sqrt(a.v)}; }
};

}  // namespace mmhand::simd
