#pragma once

// NEON backend: 2 double lanes (aarch64 only; AArch32 NEON lacks
// float64x2 arithmetic).  Guarded so the header stays self-contained
// on other architectures.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

namespace mmhand::simd {

struct VNeon {
  static constexpr int kWidth = 2;
  float64x2_t v;

  static VNeon load(const double* p) { return {vld1q_f64(p)}; }
  void store(double* p) const { vst1q_f64(p, v); }
  static VNeon broadcast(double x) { return {vdupq_n_f64(x)}; }
  static VNeon zero() { return {vdupq_n_f64(0.0)}; }

  friend VNeon operator+(VNeon a, VNeon b) { return {vaddq_f64(a.v, b.v)}; }
  friend VNeon operator-(VNeon a, VNeon b) { return {vsubq_f64(a.v, b.v)}; }
  friend VNeon operator*(VNeon a, VNeon b) { return {vmulq_f64(a.v, b.v)}; }

  /// a*b + c
  static VNeon fmadd(VNeon a, VNeon b, VNeon c) {
    return {vfmaq_f64(c.v, a.v, b.v)};
  }
  /// a*b - c
  static VNeon fmsub(VNeon a, VNeon b, VNeon c) {
    return {vnegq_f64(vfmsq_f64(c.v, a.v, b.v))};
  }
  static VNeon sqrt(VNeon a) { return {vsqrtq_f64(a.v)}; }
};

}  // namespace mmhand::simd

#endif  // __aarch64__
