#pragma once

// Wall-clock helpers for telemetry artifacts.  The library's numeric
// paths never consult the wall clock (reproducibility); these exist for
// observability sinks only — stamping a telemetry stream or a flight
// recorder header so post-mortem tooling can line artifacts up with the
// outside world.

#include <cstdint>
#include <string>

namespace mmhand {

/// Milliseconds since the Unix epoch (system_clock).
std::int64_t unix_time_ms();

/// `ms` since the epoch as "YYYY-MM-DDTHH:MM:SSZ" (UTC, second
/// precision).
std::string format_utc(std::int64_t ms);

}  // namespace mmhand
