#pragma once

// Hot-path purity annotation.
//
// `MMHAND_REALTIME` marks a function definition as a real-time root: in
// steady state it must not allocate, take locks, throw, perform I/O, or
// enter blocking syscalls.  The macro expands to nothing — the compiler
// never sees it — but `mmhand_lint --purity` (tools/lint/purity_core)
// builds a call graph over src/mmhand/** and walks the transitive
// closure of every annotated root, reporting any reachable deny-set
// token with the full call chain.  Functions with an audited exception
// (grow-on-demand scratch, init-once caches, cold asserts) are listed
// in scripts/purity_allowlist.json with a reason.
//
// Annotate the *definition*, directly before the declaration head:
//
//   MMHAND_REALTIME
//   RadarCube RadarPipeline::process_frame(const IfFrame& frame) const {
//
// The runtime cross-check lives in obs/alloc: a counting operator
// new/delete interposer that scripts/check_purity.sh uses to assert
// zero allocations per steady-state frame (see DESIGN "Real-time
// safety & purity analysis").
#define MMHAND_REALTIME
