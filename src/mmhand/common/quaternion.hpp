#pragma once

// Unit quaternions for joint rotations.
//
// mmHand's mesh module predicts joint rotations as quaternions (R^{21x4})
// and converts them to the axis-angle representation MANO consumes (§V).

#include "mmhand/common/vec3.hpp"

namespace mmhand {

struct Quaternion {
  // Scalar-first convention: q = w + xi + yj + zk.
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Quaternion() = default;
  constexpr Quaternion(double w_, double x_, double y_, double z_)
      : w(w_), x(x_), y(y_), z(z_) {}

  static Quaternion identity() { return {1.0, 0.0, 0.0, 0.0}; }

  /// Rotation of `angle` radians about `axis` (need not be unit length).
  static Quaternion from_axis_angle(const Vec3& axis, double angle);

  /// Rotation encoded as axis*angle (MANO's theta entries).
  static Quaternion from_rotation_vector(const Vec3& rv);

  /// Hamilton product; composes rotations (this applied after o... note
  /// convention: (a*b).rotate(v) == a.rotate(b.rotate(v))).
  Quaternion operator*(const Quaternion& o) const;

  Quaternion conjugate() const { return {w, -x, -y, -z}; }
  double norm() const;
  Quaternion normalized() const;

  /// Rotates a vector by this (assumed unit) quaternion.
  Vec3 rotate(const Vec3& v) const;

  /// Axis-angle (rotation vector) representation; angle in [0, pi].
  Vec3 to_rotation_vector() const;

  /// Column-major-free 3x3 rotation matrix written into m[3][3] (row major).
  void to_matrix(double m[3][3]) const;

  /// Quaternion of a (proper) rotation matrix, row major.
  static Quaternion from_matrix(const double m[3][3]);

  /// Geodesic angle between two unit quaternions (radians, in [0, pi]).
  static double angle_between(const Quaternion& a, const Quaternion& b);

  /// Spherical linear interpolation between unit quaternions.
  static Quaternion slerp(const Quaternion& a, const Quaternion& b, double t);
};

}  // namespace mmhand
