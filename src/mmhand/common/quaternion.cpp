#include "mmhand/common/quaternion.hpp"

#include <algorithm>
#include <cmath>

namespace mmhand {

Quaternion Quaternion::from_axis_angle(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  const double half = 0.5 * angle;
  const double s = std::sin(half);
  return {std::cos(half), u.x * s, u.y * s, u.z * s};
}

Quaternion Quaternion::from_rotation_vector(const Vec3& rv) {
  const double angle = rv.norm();
  if (angle < 1e-12) {
    // First-order expansion keeps the map smooth near the identity.
    return Quaternion{1.0, 0.5 * rv.x, 0.5 * rv.y, 0.5 * rv.z}.normalized();
  }
  return from_axis_angle(rv, angle);
}

Quaternion Quaternion::operator*(const Quaternion& o) const {
  return {w * o.w - x * o.x - y * o.y - z * o.z,
          w * o.x + x * o.w + y * o.z - z * o.y,
          w * o.y - x * o.z + y * o.w + z * o.x,
          w * o.z + x * o.y - y * o.x + z * o.w};
}

double Quaternion::norm() const {
  return std::sqrt(w * w + x * x + y * y + z * z);
}

Quaternion Quaternion::normalized() const {
  const double n = norm();
  if (n < 1e-300) return identity();
  return {w / n, x / n, y / n, z / n};
}

Vec3 Quaternion::rotate(const Vec3& v) const {
  // v' = v + 2*r x (r x v + w*v), with r the vector part.
  const Vec3 r{x, y, z};
  const Vec3 t = r.cross(v) * 2.0;
  return v + t * w + r.cross(t);
}

Vec3 Quaternion::to_rotation_vector() const {
  Quaternion q = normalized();
  if (q.w < 0.0) q = {-q.w, -q.x, -q.y, -q.z};  // canonical hemisphere
  const double sin_half = std::sqrt(q.x * q.x + q.y * q.y + q.z * q.z);
  const double angle = 2.0 * std::atan2(sin_half, q.w);
  if (sin_half < 1e-12) return Vec3{q.x, q.y, q.z} * 2.0;
  const double scale = angle / sin_half;
  return {q.x * scale, q.y * scale, q.z * scale};
}

void Quaternion::to_matrix(double m[3][3]) const {
  const Quaternion q = normalized();
  const double xx = q.x * q.x, yy = q.y * q.y, zz = q.z * q.z;
  const double xy = q.x * q.y, xz = q.x * q.z, yz = q.y * q.z;
  const double wx = q.w * q.x, wy = q.w * q.y, wz = q.w * q.z;
  m[0][0] = 1 - 2 * (yy + zz);
  m[0][1] = 2 * (xy - wz);
  m[0][2] = 2 * (xz + wy);
  m[1][0] = 2 * (xy + wz);
  m[1][1] = 1 - 2 * (xx + zz);
  m[1][2] = 2 * (yz - wx);
  m[2][0] = 2 * (xz - wy);
  m[2][1] = 2 * (yz + wx);
  m[2][2] = 1 - 2 * (xx + yy);
}

Quaternion Quaternion::from_matrix(const double m[3][3]) {
  // Shepperd's method: pick the largest diagonal combination for
  // numerical stability.
  const double trace = m[0][0] + m[1][1] + m[2][2];
  Quaternion q;
  if (trace > 0.0) {
    const double s = std::sqrt(trace + 1.0) * 2.0;
    q = {0.25 * s, (m[2][1] - m[1][2]) / s, (m[0][2] - m[2][0]) / s,
         (m[1][0] - m[0][1]) / s};
  } else if (m[0][0] > m[1][1] && m[0][0] > m[2][2]) {
    const double s = std::sqrt(1.0 + m[0][0] - m[1][1] - m[2][2]) * 2.0;
    q = {(m[2][1] - m[1][2]) / s, 0.25 * s, (m[0][1] + m[1][0]) / s,
         (m[0][2] + m[2][0]) / s};
  } else if (m[1][1] > m[2][2]) {
    const double s = std::sqrt(1.0 + m[1][1] - m[0][0] - m[2][2]) * 2.0;
    q = {(m[0][2] - m[2][0]) / s, (m[0][1] + m[1][0]) / s, 0.25 * s,
         (m[1][2] + m[2][1]) / s};
  } else {
    const double s = std::sqrt(1.0 + m[2][2] - m[0][0] - m[1][1]) * 2.0;
    q = {(m[1][0] - m[0][1]) / s, (m[0][2] + m[2][0]) / s,
         (m[1][2] + m[2][1]) / s, 0.25 * s};
  }
  return q.normalized();
}

double Quaternion::angle_between(const Quaternion& a, const Quaternion& b) {
  const Quaternion qa = a.normalized(), qb = b.normalized();
  double dot = qa.w * qb.w + qa.x * qb.x + qa.y * qb.y + qa.z * qb.z;
  dot = std::clamp(std::abs(dot), 0.0, 1.0);
  return 2.0 * std::acos(dot);
}

Quaternion Quaternion::slerp(const Quaternion& a, const Quaternion& b,
                             double t) {
  Quaternion qa = a.normalized();
  Quaternion qb = b.normalized();
  double dot = qa.w * qb.w + qa.x * qb.x + qa.y * qb.y + qa.z * qb.z;
  if (dot < 0.0) {
    qb = {-qb.w, -qb.x, -qb.y, -qb.z};
    dot = -dot;
  }
  if (dot > 0.9995) {
    // Nearly parallel: linear interpolation avoids division by ~0.
    return Quaternion{qa.w + t * (qb.w - qa.w), qa.x + t * (qb.x - qa.x),
                      qa.y + t * (qb.y - qa.y), qa.z + t * (qb.z - qa.z)}
        .normalized();
  }
  const double theta = std::acos(std::clamp(dot, -1.0, 1.0));
  const double sin_theta = std::sin(theta);
  const double wa = std::sin((1.0 - t) * theta) / sin_theta;
  const double wb = std::sin(t * theta) / sin_theta;
  return {wa * qa.w + wb * qb.w, wa * qa.x + wb * qb.x, wa * qa.y + wb * qb.y,
          wa * qa.z + wb * qb.z};
}

}  // namespace mmhand
