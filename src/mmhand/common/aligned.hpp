#pragma once

// Over-aligned allocation for SIMD-friendly buffers.
//
// The simd/ kernels stream split-complex (SoA) arrays with vector
// loads; allocating them on cache-line boundaries keeps every lane
// load within one line and avoids split-load penalties.  The allocator
// routes through the aligned `::operator new` overloads so the memory
// is still owned by the normal C++ runtime (valgrind/ASan see matched
// new/delete pairs, and no raw malloc appears in library code).

#include <cstddef>
#include <new>
#include <vector>

namespace mmhand {

inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Align = kSimdAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below natural alignment");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose storage starts on a 64-byte boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace mmhand
