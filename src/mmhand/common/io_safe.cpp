#include "mmhand/common/io_safe.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "mmhand/fault/fault.hpp"

namespace mmhand::io_safe {

namespace {

constexpr std::uint32_t kMagic = 0x4F494D4D;  // "MMIO" little-endian
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

std::atomic<std::int64_t> g_crash_after{-1};

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// RAII close + remove-on-error for the temp file.
struct TempFile {
  std::FILE* file = nullptr;
  std::string path;
  bool keep = false;

  ~TempFile() {
    if (file != nullptr) std::fclose(file);
    if (!keep) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
    }
  }
};

/// Writes `n` bytes honoring the crash-test hook: when armed, exactly
/// `g_crash_after` bytes of the temp file land on disk before the
/// process dies mid-write, like a SIGKILL between two write calls.
std::size_t write_with_crash_hook(std::FILE* f, const unsigned char* data,
                                  std::size_t n, std::size_t written_before) {
  const std::int64_t crash_at = g_crash_after.load(std::memory_order_relaxed);
  if (crash_at >= 0 &&
      static_cast<std::int64_t>(written_before + n) > crash_at) {
    const std::size_t partial =
        static_cast<std::size_t>(crash_at) - written_before;
    if (partial > 0) (void)std::fwrite(data, 1, partial, f);
    std::fflush(f);
    std::_Exit(kCrashExitCode);
  }
  return std::fwrite(data, 1, n, f);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_file_durable(const std::string& path,
                        const std::vector<unsigned char>& payload) {
  std::vector<unsigned char> blob;
  blob.reserve(kHeaderSize + payload.size());
  put_u32(blob, kMagic);
  put_u32(blob, kVersion);
  put_u64(blob, payload.size());
  put_u32(blob, crc32(payload.data(), payload.size()));
  blob.insert(blob.end(), payload.begin(), payload.end());

  TempFile tmp;
  tmp.path = path + ".tmp";
  tmp.file = std::fopen(tmp.path.c_str(), "wb");
  MMHAND_CHECK(tmp.file != nullptr, "cannot open for writing: " << tmp.path);

  std::size_t want = blob.size();
  // Injected short write: the syscall "succeeds" for only part of the
  // buffer, exactly what a full disk or a signal mid-write produces.
  if (fault::should_inject(fault::Kind::kShortWrite)) want = blob.size() / 2;
  const std::size_t wrote =
      write_with_crash_hook(tmp.file, blob.data(), want, 0);
  MMHAND_CHECK(wrote == blob.size(),
               "short write to " << tmp.path << " (" << wrote << " of "
                                 << blob.size() << " bytes)");
  MMHAND_CHECK(std::fflush(tmp.file) == 0, "flush failure on " << tmp.path);
#if defined(__unix__) || defined(__APPLE__)
  MMHAND_CHECK(::fsync(::fileno(tmp.file)) == 0,
               "fsync failure on " << tmp.path);
#endif
  MMHAND_CHECK(!fault::should_inject(fault::Kind::kFsyncFail),
               "injected fsync failure on " << tmp.path);
  MMHAND_CHECK(std::fclose(tmp.file) == 0, "close failure on " << tmp.path);
  tmp.file = nullptr;

  std::error_code ec;
  std::filesystem::rename(tmp.path, path, ec);
  MMHAND_CHECK(!ec, "cannot rename " << tmp.path << " to " << path << ": "
                                     << ec.message());
  tmp.keep = true;  // renamed away; nothing to clean up
}

std::vector<unsigned char> read_file_validated(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  MMHAND_CHECK(f != nullptr, "cannot open for reading: " << path);
  std::vector<unsigned char> blob;
  std::array<unsigned char, 1 << 16> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), f)) > 0)
    blob.insert(blob.end(), chunk.data(), chunk.data() + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  MMHAND_CHECK(!read_error, "read failure on " << path);

  // Injected bit rot: flip one bit anywhere in the file image; the
  // envelope validation below must catch it, wherever it lands.
  if (!blob.empty() && fault::should_inject(fault::Kind::kBitFlip)) {
    const std::uint64_t bit =
        fault::draw_u64(fault::Kind::kBitFlip) % (blob.size() * 8);
    blob[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
  }

  MMHAND_CHECK(blob.size() >= kHeaderSize,
               "truncated artifact " << path << " (" << blob.size()
                                     << " bytes)");
  MMHAND_CHECK(get_u32(blob.data()) == kMagic,
               "not a durable mmhand artifact: " << path);
  MMHAND_CHECK(get_u32(blob.data() + 4) == kVersion,
               "unsupported artifact version in " << path);
  const std::uint64_t payload_size = get_u64(blob.data() + 8);
  MMHAND_CHECK(payload_size == blob.size() - kHeaderSize,
               "artifact " << path << " is truncated or padded (header"
                           << " claims " << payload_size << " payload bytes,"
                           << " file holds " << blob.size() - kHeaderSize
                           << ")");
  const std::uint32_t stored_crc = get_u32(blob.data() + 16);
  const std::uint32_t actual_crc =
      crc32(blob.data() + kHeaderSize, static_cast<std::size_t>(payload_size));
  MMHAND_CHECK(stored_crc == actual_crc,
               "CRC mismatch in " << path << " (stored " << stored_crc
                                  << ", computed " << actual_crc << ")");
  return {blob.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
          blob.end()};
}

std::string quarantine(const std::string& path) {
  const std::string target = path + ".corrupt";
  std::error_code ec;
  std::filesystem::rename(path, target, ec);
  if (!ec) return target;
  std::filesystem::remove(path, ec);
  return "";
}

void set_crash_after_bytes(std::int64_t n) {
  g_crash_after.store(n, std::memory_order_relaxed);
}

std::uint64_t repair_torn_line_tail(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return 0;
  // A record line is far below 64 KiB; scanning one window from the end
  // finds the last newline of any log this writer produced.
  constexpr std::uintmax_t kWindow = 64 * 1024;
  const std::uintmax_t start = size > kWindow ? size - kWindow : 0;
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return 0;
  std::string window(static_cast<std::size_t>(size - start), '\0');
  const bool seek_failed =
      std::fseek(in, static_cast<long>(start), SEEK_SET) != 0;
  const std::size_t got =
      seek_failed ? 0 : std::fread(window.data(), 1, window.size(), in);
  std::fclose(in);
  if (got != window.size()) return 0;
  const std::size_t last_nl = window.rfind('\n');
  if (last_nl == window.size() - 1) return 0;  // tail is complete
  // No newline anywhere in the window: with start > 0 the window began
  // mid-file and the last line boundary is unknown — leave it alone.
  if (last_nl == std::string::npos && start > 0) return 0;
  const std::uintmax_t keep =
      last_nl == std::string::npos ? 0 : start + last_nl + 1;
  if (keep == size) return 0;
  std::filesystem::resize_file(path, keep, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size - keep);
}

bool LineWriter::open(const std::string& path) {
  if (file_ != nullptr && path_ == path) return true;
  close();
  repair_torn_line_tail(path);
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) return false;
  path_ = path;
  return true;
}

bool LineWriter::append(const std::string& line) {
  if (file_ == nullptr) return false;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    return false;
  if (std::fputc('\n', file_) == EOF) return false;
  return std::fflush(file_) == 0;
}

void LineWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
}

}  // namespace mmhand::io_safe
