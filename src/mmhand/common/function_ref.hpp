#pragma once

// Non-owning callable reference.
//
// `std::function` small-object storage tops out around two pointers, so
// the capture-heavy lambdas the radar stages hand to `parallel_for`
// spilled to the heap on every call — one allocation per parallel
// region, per frame, forever.  `FunctionRef` is the classic two-word
// (object pointer, trampoline pointer) view: it never copies or owns
// the callable, so constructing one from a lambda temporary is free.
//
// The referenced callable must outlive every invocation.  That holds
// for `parallel_for`'s usage by construction: the submitting thread
// blocks until the region drains, so a lambda temporary in the call
// expression lives past the last `fn(i)`.

#include <memory>
#include <type_traits>
#include <utility>

namespace mmhand {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<F>>,
                                FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // call sites pass lambdas exactly as they passed them to std::function.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace mmhand
