#include "mmhand/common/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "mmhand/common/error.hpp"

namespace mmhand::json {

namespace {

/// Recursive-descent parser over a borrowed buffer.
struct Parser {
  const char* p;
  const char* end;
  std::string error;

  bool fail(const std::string& what, const char* at) {
    if (error.empty()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%zd",
                    static_cast<std::ptrdiff_t>(at - start));
      error = what + " at offset " + buf;
    }
    return false;
  }

  const char* start = nullptr;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }

  bool literal(const char* word, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    for (std::size_t i = 0; i < n; ++i)
      if (p[i] != word[i]) return false;
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    const char* at = p;
    if (p >= end || *p != '"') return fail("expected string", at);
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("unterminated escape", at);
        switch (*p) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (end - p < 5) return fail("short \\u escape", at);
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
              else
                return fail("bad \\u escape", at);
            }
            p += 4;
            // UTF-8 encode (no surrogate-pair handling; our emitters
            // only escape control characters, all below U+0080).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape", at);
        }
        ++p;
      } else {
        out.push_back(*p);
        ++p;
      }
    }
    if (p >= end) return fail("unterminated string", at);
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Value& out) {
    skip_ws();
    const char* at = p;
    if (p >= end) return fail("unexpected end of input", at);
    switch (*p) {
      case '{': {
        ++p;
        Object obj;
        skip_ws();
        if (p < end && *p == '}') {
          ++p;
          out = Value::make_object(std::move(obj));
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (p >= end || *p != ':') return fail("expected ':'", p);
          ++p;
          Value v;
          if (!parse_value(v)) return false;
          obj.emplace(std::move(key), std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            out = Value::make_object(std::move(obj));
            return true;
          }
          return fail("expected ',' or '}'", p);
        }
      }
      case '[': {
        ++p;
        Array arr;
        skip_ws();
        if (p < end && *p == ']') {
          ++p;
          out = Value::make_array(std::move(arr));
          return true;
        }
        while (true) {
          Value v;
          if (!parse_value(v)) return false;
          arr.push_back(std::move(v));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            out = Value::make_array(std::move(arr));
            return true;
          }
          return fail("expected ',' or ']'", p);
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value::make_string(std::move(s));
        return true;
      }
      case 't':
        if (literal("true", 4)) {
          out = Value::make_bool(true);
          return true;
        }
        return fail("bad literal", at);
      case 'f':
        if (literal("false", 5)) {
          out = Value::make_bool(false);
          return true;
        }
        return fail("bad literal", at);
      case 'n':
        if (literal("null", 4)) {
          out = Value();
          return true;
        }
        return fail("bad literal", at);
      default: {
        char* num_end = nullptr;
        const double v = std::strtod(p, &num_end);
        if (num_end == p || num_end > end) return fail("bad number", at);
        p = num_end;
        out = Value::make_number(v);
        return true;
      }
    }
  }
};

}  // namespace

bool Value::as_bool() const {
  MMHAND_CHECK(is_bool(), "json value is not a bool");
  return bool_;
}

double Value::as_number() const {
  MMHAND_CHECK(is_number(), "json value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  MMHAND_CHECK(is_string(), "json value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  MMHAND_CHECK(is_array(), "json value is not an array");
  return *array_;
}

const Object& Value::as_object() const {
  MMHAND_CHECK(is_object(), "json value is not an object");
  return *object_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

double Value::number_or(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->string_ : fallback;
}

Value Value::parse(const std::string& text, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  parser.start = text.data();
  Value out;
  bool ok = parser.parse_value(out);
  if (ok) {
    parser.skip_ws();
    if (parser.p != parser.end)
      ok = parser.fail("trailing garbage", parser.p);
  }
  if (!ok) {
    if (error != nullptr) *error = parser.error;
    return Value();
  }
  if (error != nullptr) error->clear();
  return out;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::make_shared<Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<Object>(std::move(o));
  return v;
}

}  // namespace mmhand::json
