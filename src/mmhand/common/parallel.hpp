#pragma once

// Process-wide thread pool and deterministic parallel-for.
//
// The radar pipeline and the NN layers are embarrassingly parallel across
// chirps, antennas, range bins and output rows.  `parallel_for` splits an
// index range over a lazily-initialized pool of worker threads; callers
// guarantee that each index writes a disjoint, pre-sized output slice, so
// results are bitwise identical to the serial path regardless of thread
// count — no reductions, no atomics in user code, no ordering effects.
//
// Thread count resolution, in priority order:
//   1. `set_num_threads(n)` (runtime override, used by tests and benches),
//   2. the `MMHAND_THREADS` environment variable at first use,
//   3. `std::thread::hardware_concurrency()`.
// `MMHAND_THREADS=1` (or `set_num_threads(1)`) forces the exact serial
// path: `parallel_for` degenerates to a plain loop on the calling thread
// and never touches the pool.

#include <cstdint>

#include "mmhand/common/function_ref.hpp"

namespace mmhand {

/// Number of threads `parallel_for` currently targets (>= 1).
int num_threads();

/// Overrides the target thread count at runtime (clamped to [1, 256]).
/// The pool grows on demand; shrinking only idles workers.  Safe to call
/// between parallel regions; do not call from inside a `parallel_for` body.
void set_num_threads(int n);

/// True while the calling thread is executing a `parallel_for` body.
/// Nested `parallel_for` calls observe this and fall back to serial.
bool in_parallel_region();

/// Opaque per-task context pointer, propagated from the thread that
/// submits a `parallel_for` region to every pool worker that
/// participates in it (and restored when the region drains).  The pool
/// never dereferences it; the observability layer stores its
/// frame-scoped trace context here so spans recorded on workers can be
/// attributed to the frame that spawned them.  Null by default.
void* task_context();
void set_task_context(void* context);

/// Callbacks invoked on each pool worker around its participation in a
/// region — after the submitted task context is installed, before it is
/// restored.  `begin` returns a token passed to `end`; both may be
/// null.  The submitting thread (which already owns the context) never
/// triggers them.  Install-once, before the pool is busy; used by the
/// observability layer to record per-worker spans.
struct WorkerObserver {
  void* (*begin)() = nullptr;
  void (*end)(void* token) = nullptr;
};
void set_worker_observer(const WorkerObserver& observer);

/// Applies `fn(i)` for every i in [begin, end).  Work is handed out in
/// contiguous chunks of `grain` indices; chunk assignment to threads is
/// dynamic, so `fn` must not depend on which thread runs which index.
/// Runs serially (on the calling thread, in order) when the range is empty,
/// fits in a single grain, the pool is limited to one thread, or the call
/// is nested inside another parallel region.  Participation is further
/// capped at one thread per four chunks (minimum-grain threshold), so
/// regions with only a handful of chunks run serially instead of paying
/// pool wake-up latency that exceeds their work.  The first exception
/// thrown by any worker is rethrown on the calling thread after the
/// region completes.
///
/// `fn` is taken as a non-owning `FunctionRef`, so lambda temporaries
/// in the call expression bind without a heap-backed `std::function`
/// copy; the callable only has to live until `parallel_for` returns,
/// which the blocking submit guarantees.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t)> fn);

}  // namespace mmhand
