#include "mmhand/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand {

double mean(std::span<const double> xs) {
  MMHAND_CHECK(!xs.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  MMHAND_CHECK(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  MMHAND_CHECK(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  MMHAND_CHECK(!xs.empty(), "percentile of empty span");
  MMHAND_CHECK(p >= 0.0 && p <= 100.0, "percentile p=" << p);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double fraction_below(std::span<const double> xs, double threshold) {
  MMHAND_CHECK(!xs.empty(), "fraction_below of empty span");
  std::size_t n = 0;
  for (double x : xs)
    if (x < threshold) ++n;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, int bins,
                                    double hi) {
  MMHAND_CHECK(!xs.empty(), "empirical_cdf of empty span");
  MMHAND_CHECK(bins >= 2, "empirical_cdf needs >= 2 bins");
  const double top = hi > 0.0 ? hi : max_value(xs);
  std::vector<CdfPoint> out(static_cast<std::size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    const double v = top * static_cast<double>(b) /
                     static_cast<double>(bins - 1);
    std::size_t n = 0;
    for (double x : xs)
      if (x <= v) ++n;
    out[static_cast<std::size_t>(b)] = {
        v, static_cast<double>(n) / static_cast<double>(xs.size())};
  }
  return out;
}

double normalized_auc(std::span<const double> xs,
                      std::span<const double> ys) {
  MMHAND_CHECK(xs.size() == ys.size(), "AUC spans differ in length");
  MMHAND_CHECK(xs.size() >= 2, "AUC needs >= 2 points");
  double area = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    MMHAND_CHECK(xs[i] >= xs[i - 1], "AUC x not sorted");
    area += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  const double range = xs.back() - xs.front();
  MMHAND_CHECK(range > 0.0, "AUC x-range is zero");
  return area / range;
}

}  // namespace mmhand
