#pragma once

// Fixed-capacity ring buffer: push overwrites the oldest element once
// the ring is full.  Single-owner container (no internal locking) —
// the telemetry sampler guards its ring with its own mutex, matching
// the rest of the obs layer's "lock where the state lives" convention.

#include <cstddef>
#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    MMHAND_CHECK(capacity >= 1, "RingBuffer capacity must be >= 1");
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends `v`, evicting the oldest element when full.
  void push(T v) {
    slots_[next_] = std::move(v);
    next_ = (next_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  /// Element `i` in age order: 0 is the oldest retained, size()-1 the
  /// newest.
  const T& operator[](std::size_t i) const {
    MMHAND_CHECK(i < size_, "RingBuffer index " << i << " out of range");
    const std::size_t oldest =
        size_ < slots_.size() ? 0 : next_;
    return slots_[(oldest + i) % slots_.size()];
  }

  const T& newest() const {
    MMHAND_CHECK(size_ > 0, "RingBuffer::newest on empty ring");
    return (*this)[size_ - 1];
  }

  void clear() {
    next_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mmhand
