#include "mmhand/common/clock.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace mmhand {

std::int64_t unix_time_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string format_utc(std::int64_t ms) {
  const std::time_t secs = static_cast<std::time_t>(ms / 1000);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

}  // namespace mmhand
