#pragma once

// Error handling for mmHand.
//
// The library reports contract violations and unrecoverable runtime failures
// through mmhand::Error (derived from std::runtime_error).  MMHAND_CHECK is
// used for input validation on public API boundaries; MMHAND_ASSERT for
// internal invariants that indicate a library bug.

#include <sstream>
#include <stdexcept>
#include <string>

namespace mmhand {

/// Exception type thrown by all mmHand components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace mmhand

/// Validates a condition on a public API boundary; throws mmhand::Error with
/// a formatted message when the condition does not hold.
#define MMHAND_CHECK(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream mmhand_check_os_;                                  \
      mmhand_check_os_ << msg;                                              \
      ::mmhand::detail::throw_error("check", #cond, __FILE__, __LINE__,     \
                                    mmhand_check_os_.str());                \
    }                                                                       \
  } while (false)

/// Internal invariant; failure indicates a bug inside the library.
#define MMHAND_ASSERT(cond)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::mmhand::detail::throw_error("assert", #cond, __FILE__, __LINE__,    \
                                    "internal invariant violated");         \
    }                                                                       \
  } while (false)
