#include "mmhand/common/serialize.hpp"

#include <cstring>
#include <filesystem>

#include "mmhand/common/io_safe.hpp"

namespace mmhand {

BinaryWriter::BinaryWriter(const std::string& path) : path_(path) {
  MMHAND_CHECK(!path.empty(), "empty path for BinaryWriter");
}

void BinaryWriter::append(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  buffer_.insert(buffer_.end(), p, p + n);
}

void BinaryWriter::write_u32(std::uint32_t v) { append(&v, sizeof(v)); }
void BinaryWriter::write_u64(std::uint64_t v) { append(&v, sizeof(v)); }
void BinaryWriter::write_f32(float v) { append(&v, sizeof(v)); }
void BinaryWriter::write_f64(double v) { append(&v, sizeof(v)); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  append(s.data(), s.size());
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  append(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_i32_vector(const std::vector<int>& v) {
  write_u64(v.size());
  append(v.data(), v.size() * sizeof(int));
}

void BinaryWriter::close() {
  MMHAND_CHECK(!closed_, "BinaryWriter::close called twice for " << path_);
  io_safe::write_file_durable(path_, buffer_);
  closed_ = true;
}

BinaryReader::BinaryReader(const std::string& path)
    : buffer_(io_safe::read_file_validated(path)), path_(path) {}

void BinaryReader::take(void* dst, std::size_t n, const char* what) {
  MMHAND_CHECK(n <= buffer_.size() - pos_,
               "truncated " << what << " in " << path_);
  std::memcpy(dst, buffer_.data() + pos_, n);
  pos_ += n;
}

template <typename T>
T BinaryReader::read_pod() {
  T v{};
  take(&v, sizeof(v), "read");
  return v;
}

std::uint32_t BinaryReader::read_u32() { return read_pod<std::uint32_t>(); }
std::uint64_t BinaryReader::read_u64() { return read_pod<std::uint64_t>(); }
float BinaryReader::read_f32() { return read_pod<float>(); }
double BinaryReader::read_f64() { return read_pod<double>(); }

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  MMHAND_CHECK(n <= buffer_.size() - pos_, "truncated string in " << path_);
  std::string s(n, '\0');
  std::memcpy(s.data(), buffer_.data() + pos_, n);
  pos_ += n;
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const auto n = read_u64();
  MMHAND_CHECK(n <= (buffer_.size() - pos_) / sizeof(float),
               "truncated f32 vector in " << path_);
  std::vector<float> v(n);
  std::memcpy(v.data(), buffer_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return v;
}

std::vector<int> BinaryReader::read_i32_vector() {
  const auto n = read_u64();
  MMHAND_CHECK(n <= (buffer_.size() - pos_) / sizeof(int),
               "truncated i32 vector in " << path_);
  std::vector<int> v(n);
  std::memcpy(v.data(), buffer_.data() + pos_, n * sizeof(int));
  pos_ += n * sizeof(int);
  return v;
}

bool BinaryReader::eof() { return pos_ >= buffer_.size(); }

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace mmhand
