#include "mmhand/common/serialize.hpp"

#include <filesystem>

namespace mmhand {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary), path_(path) {
  MMHAND_CHECK(out_.good(), "cannot open for writing: " << path);
}

void BinaryWriter::write_u32(std::uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_u64(std::uint64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_f32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::write_f64(double v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void BinaryWriter::write_i32_vector(const std::vector<int>& v) {
  write_u64(v.size());
  out_.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(int)));
}

void BinaryWriter::close() {
  out_.flush();
  MMHAND_CHECK(out_.good(), "write failure on " << path_);
  out_.close();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  MMHAND_CHECK(in_.good(), "cannot open for reading: " << path);
}

template <typename T>
T BinaryReader::read_pod() {
  T v{};
  in_.read(reinterpret_cast<char*>(&v), sizeof(v));
  MMHAND_CHECK(in_.good(), "truncated read from " << path_);
  return v;
}

std::uint32_t BinaryReader::read_u32() { return read_pod<std::uint32_t>(); }
std::uint64_t BinaryReader::read_u64() { return read_pod<std::uint64_t>(); }
float BinaryReader::read_f32() { return read_pod<float>(); }
double BinaryReader::read_f64() { return read_pod<double>(); }

std::string BinaryReader::read_string() {
  const auto n = read_u64();
  std::string s(n, '\0');
  in_.read(s.data(), static_cast<std::streamsize>(n));
  MMHAND_CHECK(in_.good(), "truncated string in " << path_);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const auto n = read_u64();
  std::vector<float> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  MMHAND_CHECK(in_.good(), "truncated f32 vector in " << path_);
  return v;
}

std::vector<int> BinaryReader::read_i32_vector() {
  const auto n = read_u64();
  std::vector<int> v(n);
  in_.read(reinterpret_cast<char*>(v.data()),
           static_cast<std::streamsize>(n * sizeof(int)));
  MMHAND_CHECK(in_.good(), "truncated i32 vector in " << path_);
  return v;
}

bool BinaryReader::eof() {
  in_.peek();
  return in_.eof();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace mmhand
