#pragma once

// Minimal binary (de)serialization for model checkpoints and caches.
//
// Format: little-endian PODs written via tagged helpers, carried inside
// the common/io_safe durable envelope (magic + version + size + CRC32,
// temp-file + fsync + atomic-rename on write).  Readers validate the
// envelope before the first field is decoded, so a truncated,
// bit-flipped, or stale pre-envelope cache fails loudly with
// mmhand::Error instead of silently producing garbage weights.

#include <cstdint>
#include <string>
#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_i32_vector(const std::vector<int>& v);

  /// Durably persists everything written so far (envelope + fsync +
  /// atomic rename); throws on I/O failure.  Until close() succeeds the
  /// destination path is untouched.
  void close();

 private:
  void append(const void* data, std::size_t n);

  std::vector<unsigned char> buffer_;
  std::string path_;
  bool closed_ = false;
};

class BinaryReader {
 public:
  /// Loads and validates the file's envelope up front; throws
  /// mmhand::Error when the file is missing or corrupt.
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<int> read_i32_vector();

  bool eof();

 private:
  template <typename T>
  T read_pod();
  void take(void* dst, std::size_t n, const char* what);

  std::vector<unsigned char> buffer_;
  std::size_t pos_ = 0;
  std::string path_;
};

/// True when a regular file exists at `path`.
bool file_exists(const std::string& path);

}  // namespace mmhand
