#pragma once

// Minimal binary (de)serialization for model checkpoints and caches.
//
// Format: little-endian PODs written via tagged helpers.  Readers validate a
// magic header and version so stale caches fail loudly instead of silently
// producing garbage weights.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_i32_vector(const std::vector<int>& v);

  /// Flushes and closes; throws on I/O failure.
  void close();

 private:
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<int> read_i32_vector();

  bool eof();

 private:
  template <typename T>
  T read_pod();

  std::ifstream in_;
  std::string path_;
};

/// True when a regular file exists at `path`.
bool file_exists(const std::string& path);

}  // namespace mmhand
