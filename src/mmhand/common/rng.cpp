#include "mmhand/common/rng.hpp"

#include <numeric>

namespace mmhand {

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

std::vector<int> Rng::permutation(int n) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (int i = n - 1; i > 0; --i) {
    const int j = uniform_int(0, i);
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(j)]);
  }
  return idx;
}

}  // namespace mmhand
