#include "mmhand/common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand {

namespace {

constexpr int kMaxThreads = 256;

/// Minimum chunks each participating thread must have a shot at.  Tiny
/// regions (the 2-tile LSTM-gate GEMM, the 4-tile conv GEMM) used to fan
/// out across the pool and lose to wake-up/handoff latency — the PR-1
/// bench showed 0.81x at 4 threads on lstm_step.  Capping participants
/// at num_chunks / kMinChunksPerThread sends those regions down the
/// serial path while leaving real fan-outs (hundreds of chunks in the
/// radar stages) untouched.  Results are unchanged either way: chunk
/// assignment is already dynamic and every index writes disjoint output.
constexpr std::int64_t kMinChunksPerThread = 4;

thread_local bool tl_in_parallel = false;
thread_local void* tl_task_context = nullptr;

/// Worker-side observer hooks; the pointer flips once (null -> installed)
/// so workers pay one acquire load per region.
std::atomic<const WorkerObserver*> g_worker_observer{nullptr};

/// MMHAND_THREADS, or 0 when unset/garbage.
int env_thread_override() {
  const char* s = std::getenv("MMHAND_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1) return 0;
  return static_cast<int>(std::min<long>(v, kMaxThreads));
}

/// One parallel-for region.  Lives on the submitting thread's stack; workers
/// hold a pointer only between submission and their `pending` check-out, and
/// the submitter does not return until `pending` reaches zero.
struct Job {
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t num_chunks = 0;
  const FunctionRef<void(std::int64_t)>* fn = nullptr;
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<int> extra_slots{0};  ///< worker participation budget
  void* task_ctx = nullptr;  ///< submitter's task_context(), adopted by workers
  std::atomic<bool> failed{false};
  int pending = 0;  ///< workers yet to check out (guarded by pool mutex)
  std::exception_ptr error;
  std::mutex error_mu;
};

/// Claims chunks of `job` until none remain (or a chunk failed).  Indices
/// within a chunk run in order; which thread runs which chunk is dynamic,
/// which is fine because every index writes disjoint output.
void run_chunks(Job& job) {
  tl_in_parallel = true;
  while (!job.failed.load(std::memory_order_relaxed)) {
    const std::int64_t c =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    const std::int64_t lo = job.begin + c * job.grain;
    const std::int64_t hi = std::min(job.end, lo + job.grain);
    try {
      for (std::int64_t i = lo; i < hi; ++i) (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  tl_in_parallel = false;
}

class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  int target_threads() const {
    return target_.load(std::memory_order_relaxed);
  }

  void set_target(int n) {
    target_.store(std::clamp(n, 1, kMaxThreads), std::memory_order_relaxed);
  }

  /// Runs one region on the pool with at most `max_threads`
  /// participants.  Regions are serialized: a second submitting thread
  /// waits here until the first region drains.
  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const FunctionRef<void(std::int64_t)>& fn, int max_threads) {
    std::lock_guard<std::mutex> submit(submit_mu_);
    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.num_chunks = (end - begin + grain - 1) / grain;
    job.fn = &fn;
    job.task_ctx = tl_task_context;
    const int participants = static_cast<int>(std::min<std::int64_t>(
        max_threads, job.num_chunks));
    job.extra_slots.store(participants - 1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      grow_locked(participants - 1);
      job_ = &job;
      job.pending = static_cast<int>(workers_.size());
      ++job_seq_;
    }
    cv_.notify_all();
    run_chunks(job);  // the submitter is participant #0
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return job.pending == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  ThreadPool() {
    const int env = env_thread_override();
    int n = env > 0 ? env
                    : static_cast<int>(std::thread::hardware_concurrency());
    target_.store(std::clamp(n, 1, kMaxThreads),
                  std::memory_order_relaxed);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Spawns workers until at least `n` exist.  Caller holds `mu_`.
  void grow_locked(int n) {
    while (static_cast<int>(workers_.size()) < n) {
      const std::uint64_t seen = job_seq_;
      workers_.emplace_back([this, seen] { worker(seen); });
    }
  }

  void worker(std::uint64_t seen) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      Job* job = job_;
      lk.unlock();
      // Respect the per-region participant budget so `set_num_threads(2)`
      // really runs two threads even when more workers exist.
      if (job->extra_slots.fetch_sub(1, std::memory_order_relaxed) > 0) {
        void* const prev_ctx = tl_task_context;
        tl_task_context = job->task_ctx;
        const WorkerObserver* obs =
            g_worker_observer.load(std::memory_order_acquire);
        void* token =
            obs != nullptr && obs->begin != nullptr ? obs->begin() : nullptr;
        run_chunks(*job);
        if (obs != nullptr && obs->end != nullptr) obs->end(token);
        tl_task_context = prev_ctx;
      }
      lk.lock();
      if (--job->pending == 0) done_cv_.notify_all();
    }
  }

  std::mutex submit_mu_;  ///< serializes whole regions
  std::mutex mu_;         ///< guards job_/job_seq_/workers_/stop_
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::atomic<int> target_{1};
};

}  // namespace

int num_threads() { return ThreadPool::instance().target_threads(); }

void set_num_threads(int n) {
  MMHAND_CHECK(n >= 1, "set_num_threads(" << n << ")");
  ThreadPool::instance().set_target(n);
}

bool in_parallel_region() { return tl_in_parallel; }

void* task_context() { return tl_task_context; }

void set_task_context(void* context) { tl_task_context = context; }

void set_worker_observer(const WorkerObserver& observer) {
  // Leaked on purpose: workers may race the end of main, and a static
  // observer struct must outlive every late region.
  g_worker_observer.store(new WorkerObserver(observer),
                          std::memory_order_release);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  FunctionRef<void(std::int64_t)> fn) {
  MMHAND_CHECK(grain >= 1, "parallel_for grain " << grain);
  if (end <= begin) return;
  ThreadPool& pool = ThreadPool::instance();
  const std::int64_t num_chunks = (end - begin + grain - 1) / grain;
  const int max_useful = static_cast<int>(std::min<std::int64_t>(
      num_chunks / kMinChunksPerThread, kMaxThreads));
  const int target = std::min(pool.target_threads(), max_useful);
  if (tl_in_parallel || end - begin <= grain || target <= 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  pool.run(begin, end, grain, fn, target);
}

}  // namespace mmhand
