#pragma once

// Minimal JSON DOM: parse-only, no external dependencies.
//
// Exists for the consumers of this library's own JSON outputs — run-log
// JSONL lines, MMHAND_METRICS snapshots, BENCH_*.json — so the report
// tool and tests can read back what the emitters wrote without a
// third-party parser.  Supports the full JSON grammar the emitters use:
// objects, arrays, strings with escapes, numbers, booleans, null.
// Numbers are held as double (adequate: every numeric field we emit is
// either a double already or a counter far below 2^53).

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mmhand::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw mmhand::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; returns nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Convenience lookups with fallback (missing key / wrong type).
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  /// Parses one JSON document (must consume the whole input except
  /// trailing whitespace).  On failure returns a null Value and sets
  /// `*error` (when non-null) to a message with an offset.
  static Value parse(const std::string& text, std::string* error = nullptr);

  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Indirect so Value stays declarable before Array/Object complete.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

}  // namespace mmhand::json
