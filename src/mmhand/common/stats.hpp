#pragma once

// Descriptive statistics used by the evaluation harness (MPJPE summaries,
// CDFs, PCK curves and their AUC).

#include <span>
#include <vector>

namespace mmhand {

double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolation percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Fraction of samples strictly below `threshold`.
double fraction_below(std::span<const double> xs, double threshold);

struct CdfPoint {
  double value = 0.0;
  double cumulative = 0.0;  // in [0, 1]
};

/// Empirical CDF evaluated at `bins` evenly spaced points spanning
/// [0, max(xs)] (or [0, hi] when hi > 0).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, int bins,
                                    double hi = 0.0);

/// Area under a curve y(x) by trapezoidal rule, normalized by the x-range so
/// a curve pinned at 1.0 has AUC 1.0 (the PCK-AUC convention).
double normalized_auc(std::span<const double> xs, std::span<const double> ys);

}  // namespace mmhand
