#pragma once

// 3-D vector used for joint positions, scatterer locations and geometry.

#include <cmath>
#include <ostream>

namespace mmhand {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in this direction; returns zero vector for zero input.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace mmhand
