#pragma once

// Deterministic random number generation.
//
// All stochastic components of mmHand (signal noise, gesture sampling,
// weight initialization, label jitter) draw from an explicitly passed Rng so
// experiments are reproducible from a single seed.

#include <cstdint>
#include <random>
#include <vector>

namespace mmhand {

/// A seedable pseudo-random source wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x6d6d48616e64ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Normal with given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// A fresh Rng whose seed is derived from this stream; lets subsystems own
  /// independent streams while staying reproducible.
  Rng fork();

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<int> permutation(int n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mmhand
