#pragma once

// Crash-safe artifact IO: every binary artifact (fold models, the mesh
// reconstructor, training checkpoints) goes to disk through one durable
// path — payload wrapped in a validated envelope, written to a
// temporary sibling, fsynced, and atomically renamed into place.  A
// reader therefore sees either the complete previous artifact or the
// complete new one, never a torn mix; anything else (truncation, bit
// rot, a stale pre-envelope file) fails CRC/structure validation and
// raises mmhand::Error so callers can quarantine and rebuild.
//
// Envelope layout (little-endian):
//   u32 magic "MMIO" | u32 version | u64 payload size | u32 payload CRC32
// followed by the payload bytes.
//
// The IO fault kinds of MMHAND_FAULT (short_write, fsync_fail,
// bit_flip) are injected here, at the exact points the real failures
// occur, so the recovery guarantees above are exercised by tests rather
// than assumed.

#include <cstdint>
#include <string>
#include <vector>

#include "mmhand/common/error.hpp"

namespace mmhand::io_safe {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a buffer.
std::uint32_t crc32(const void* data, std::size_t n);

/// Durably writes `payload` to `path`: envelope + payload into
/// `<path>.tmp`, flush + fsync, atomic rename over `path`.  Throws
/// mmhand::Error on any failure; `path` is never left truncated or
/// half-written (the temp file is removed on error).
void write_file_durable(const std::string& path,
                        const std::vector<unsigned char>& payload);

/// Reads `path` and validates the envelope (magic, version, size, CRC).
/// Returns the payload; throws mmhand::Error when the file is missing,
/// truncated, bit-flipped, or not an envelope at all.
std::vector<unsigned char> read_file_validated(const std::string& path);

/// Moves a corrupt artifact aside to `<path>.corrupt` (best effort;
/// falls back to removing it) so the caller can rebuild without the
/// poisoned file shadowing the fresh one.  Returns the quarantine path,
/// or "" when the file could only be removed.
std::string quarantine(const std::string& path);

/// Crash-test hook: the next durable write calls std::_Exit after `n`
/// bytes of the temp file have been written, simulating a SIGKILL mid
/// write.  Negative disables (the default).  Exit code 86 marks the
/// simulated kill for death tests.
void set_crash_after_bytes(std::int64_t n);

/// Exit code used by the crash-test hook.
inline constexpr int kCrashExitCode = 86;

/// Truncates a torn final line left by a crash mid-append: scans the
/// last 64 KiB for the final newline and resizes the file back to it,
/// so an append-only JSONL stream stays line-parseable after any kill.
/// Best effort — losing the torn record is the correct outcome.
/// Returns the number of bytes truncated (0 when the tail was intact).
std::uint64_t repair_torn_line_tail(const std::string& path);

/// Append-only line sink for JSONL streams (run log, telemetry).
/// Opening repairs a torn tail; every append is a full line plus '\n'
/// followed by fflush, so a reader tailing the file never sees a
/// partial record except for the final line of a crashed writer — which
/// the next open truncates.
class LineWriter {
 public:
  LineWriter() = default;
  ~LineWriter() { close(); }
  LineWriter(const LineWriter&) = delete;
  LineWriter& operator=(const LineWriter&) = delete;

  /// Opens `path` for appending (repairing a torn tail first).  A
  /// second open on the same path is a no-op; a different path closes
  /// the previous sink.  False when the file cannot be opened.
  bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends `line` + '\n' and flushes.  False when no sink is open or
  /// the write fails.
  bool append(const std::string& line);
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace mmhand::io_safe
