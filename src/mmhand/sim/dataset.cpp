#include "mmhand/sim/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <limits>

#include "mmhand/common/error.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/fault/fault.hpp"
#include "mmhand/hand/kinematics.hpp"
#include "mmhand/obs/trace.hpp"

namespace mmhand::sim {

namespace {

void zero_cube(radar::RadarCube& cube) {
  std::fill(cube.data().begin(), cube.data().end(), 0.0f);
}

/// Fault-injection pass over a finished recording (MMHAND_FAULT).  Runs
/// strictly sequentially over frames so each kind's event stream is
/// consumed in frame order — the same seed always damages the same
/// frames regardless of thread count.  Models the input-layer failure
/// modes of a real capture rig: single lost frames, multi-frame
/// packet-loss gaps, ADC rail saturation, and NaN bursts.
void inject_input_faults(Recording& rec) {
  for (std::size_t f = 0; f < rec.frames.size(); ++f) {
    auto& data = rec.frames[f].cube.data();
    if (data.empty()) continue;
    if (fault::should_inject(fault::Kind::kGap)) {
      // A DCA1000 packet-loss gap: 2-4 consecutive frames lost.
      const std::size_t len =
          2 + static_cast<std::size_t>(fault::draw_u64(fault::Kind::kGap) % 3);
      const std::size_t end = std::min(f + len, rec.frames.size());
      for (std::size_t g = f; g < end; ++g) zero_cube(rec.frames[g].cube);
      f = end - 1;
      continue;
    }
    if (fault::should_inject(fault::Kind::kDropFrame)) {
      zero_cube(rec.frames[f].cube);
      continue;
    }
    if (fault::should_inject(fault::Kind::kSaturate)) {
      // Rail clipping: every cell pinned at the frame maximum.
      float mx = 0.0f;
      for (const float v : data) mx = std::max(mx, v);
      std::fill(data.begin(), data.end(), mx > 0.0f ? mx : 1.0f);
      continue;
    }
    if (fault::should_inject(fault::Kind::kNanBurst)) {
      const std::size_t start =
          static_cast<std::size_t>(fault::draw_u64(fault::Kind::kNanBurst)) %
          data.size();
      const std::size_t len =
          1 + static_cast<std::size_t>(
                  fault::draw_u64(fault::Kind::kNanBurst) % 64);
      const std::size_t end = std::min(start + len, data.size());
      for (std::size_t c = start; c < end; ++c)
        data[c] = std::numeric_limits<float>::quiet_NaN();
    }
  }
}

}  // namespace

DatasetBuilder::DatasetBuilder(const radar::ChirpConfig& chirp,
                               const radar::PipelineConfig& pipeline_config,
                               const HandSceneConfig& hand_config,
                               const LabelNoiseConfig& label_config)
    : chirp_([&] {
        // Reject malformed configs before any member construction: a
        // NaN bandwidth or an impossible frame period would otherwise
        // surface frames later as a mysteriously empty or poisoned cube.
        chirp.validate();
        pipeline_config.cube.validate();
        return chirp;
      }()),
      array_(chirp_),
      if_sim_(chirp_, array_),
      pipeline_(chirp_, array_, pipeline_config),
      hand_config_(hand_config),
      label_config_(label_config) {}

Recording DatasetBuilder::record(const ScenarioConfig& scenario) const {
  MMHAND_SPAN("sim/record");
  MMHAND_CHECK(scenario.duration_s > 0.0, "recording duration");
  MMHAND_CHECK(scenario.hand_distance_m > 0.05 &&
                   scenario.hand_distance_m < 1.2,
               "hand distance " << scenario.hand_distance_m);

  Rng rng(scenario.seed ^ (0x517cc1b727220a95ull +
                           static_cast<std::uint64_t>(scenario.user_id)));
  Rng script_rng = rng.fork();
  Rng clutter_rng = rng.fork();
  Rng scene_rng = rng.fork();
  Rng noise_rng = rng.fork();
  Rng label_rng = rng.fork();

  // Place the hand at the scenario's bearing and range.
  const double az =
      scenario.hand_azimuth_deg * std::numbers::pi / 180.0;
  hand::GestureScriptConfig script_config;
  script_config.base_wrist = Vec3{scenario.hand_distance_m * std::sin(az),
                                  scenario.hand_distance_m * std::cos(az),
                                  0.0};
  script_config.vocabulary = scenario.vocabulary;
  if (scenario.wrist_drift_m >= 0.0)
    script_config.wrist_drift_m = scenario.wrist_drift_m;
  if (scenario.orientation_wobble_rad >= 0.0)
    script_config.orientation_wobble_rad = scenario.orientation_wobble_rad;
  const hand::GestureScript script(script_config, std::move(script_rng),
                                   scenario.duration_s);

  const auto profile = hand::HandProfile::for_user(scenario.user_id);

  // Clutter persists across the recording; dynamic pieces advance by their
  // velocity each frame.
  radar::Scene clutter = build_clutter(scenario.clutter, clutter_rng);

  Recording rec;
  rec.user_id = scenario.user_id;
  const double dt = chirp_.frame_period_s;
  const int n_frames = static_cast<int>(scenario.duration_s / dt);
  rec.frames.reserve(static_cast<std::size_t>(n_frames));

  // Frames are generated in blocks: the rng-consuming stages (scene
  // synthesis, IF simulation, label jitter) stay strictly sequential so the
  // random streams are consumed in exactly the seed order, then the radar
  // cubes — a pure function of the IF frames — are processed with
  // `parallel_for`.  The block bounds peak IF-frame memory.
  constexpr int kFrameBlock = 8;
  std::vector<radar::IfFrame> if_frames;
  for (int f0 = 0; f0 < n_frames; f0 += kFrameBlock) {
    const int block = std::min(kFrameBlock, n_frames - f0);
    if_frames.clear();
    if_frames.reserve(static_cast<std::size_t>(block));
    const std::size_t rec_base = rec.frames.size();
    MMHAND_SPAN("sim/synthesize_if_block");
    for (int f = f0; f < f0 + block; ++f) {
      const double t = static_cast<double>(f) * dt;
      const auto pose = script.pose_at(t);
      const auto prev_pose = script.pose_at(std::max(0.0, t - dt));
      const auto joints = hand::forward_kinematics(profile, pose);
      const auto prev_joints = hand::forward_kinematics(profile, prev_pose);

      radar::Scene scene =
          build_hand_scene(joints, prev_joints, dt, hand_config_, scene_rng);
      apply_glove(scene, scenario.glove, scene_rng);
      apply_handheld_object(scene, joints, scenario.object, scene_rng);
      scene.insert(scene.end(), clutter.begin(), clutter.end());
      apply_obstacle(scene, scenario.obstacle, scene_rng);

      if_frames.push_back(if_sim_.simulate_frame(scene, 0.0, noise_rng));

      FrameRecord record;
      record.true_joints = joints;
      record.joints = apply_label_noise(joints, label_config_, label_rng);
      record.gesture = script.gesture_at(t);
      record.time_s = t;
      rec.frames.push_back(std::move(record));

      // Advance dynamic clutter to the next frame.
      for (auto& s : clutter) s.position += s.velocity * dt;
    }
    parallel_for(0, block, 1, [&](std::int64_t i) {
      rec.frames[rec_base + static_cast<std::size_t>(i)].cube =
          pipeline_.process_frame(if_frames[static_cast<std::size_t>(i)]);
    });
  }
  if (fault::enabled()) inject_input_faults(rec);
  return rec;
}

}  // namespace mmhand::sim
