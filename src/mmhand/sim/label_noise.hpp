#pragma once

// Ground-truth label noise.
//
// The paper's labels come from a depth camera + MediaPipe Hands — accurate
// but not perfect.  We jitter the forward-kinematics joints with a small
// Gaussian so the supervision matches that "imperfect but unbiased" regime
// (DESIGN.md §2).

#include "mmhand/common/rng.hpp"
#include "mmhand/hand/skeleton.hpp"

namespace mmhand::sim {

struct LabelNoiseConfig {
  double stddev_m = 0.0025;  ///< per-axis jitter (~MediaPipe error scale)
};

hand::JointSet apply_label_noise(const hand::JointSet& joints,
                                 const LabelNoiseConfig& config, Rng& rng);

}  // namespace mmhand::sim
