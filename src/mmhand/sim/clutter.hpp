#pragma once

// Environmental clutter (§VI-F, §VI-I).
//
// Models the three evaluation environments (playground / corridor /
// classroom) and the two body-position types: type 1 with the user's body
// directly behind the hand, type 2 with the body to the side of the radar.

#include <string_view>

#include "mmhand/common/rng.hpp"
#include "mmhand/radar/scatterer.hpp"

namespace mmhand::sim {

enum class Environment { kPlayground, kCorridor, kClassroom };

std::string_view environment_name(Environment e);

enum class BodyPosition {
  kNone,   ///< no body in the scene (isolated hand; unit tests)
  kFront,  ///< type 1: body directly behind the outstretched hand
  kSide,   ///< type 2: body to the side, hand reached in front of the radar
};

std::string_view body_position_name(BodyPosition p);

struct ClutterConfig {
  Environment environment = Environment::kCorridor;
  BodyPosition body = BodyPosition::kFront;
  /// Distance from radar to the user's torso (meters).
  double body_range_m = 0.65;
};

/// Static + dynamic clutter scatterers for a scenario.  Deterministic for a
/// given rng state; call once per recording (clutter persists over frames,
/// so scatterer velocities carry the motion of walking people).
radar::Scene build_clutter(const ClutterConfig& config, Rng& rng);

}  // namespace mmhand::sim
