#include "mmhand/sim/clutter.hpp"

#include "mmhand/common/error.hpp"

namespace mmhand::sim {

std::string_view environment_name(Environment e) {
  switch (e) {
    case Environment::kPlayground: return "playground";
    case Environment::kCorridor: return "corridor";
    case Environment::kClassroom: return "classroom";
  }
  throw Error("unknown environment");
}

std::string_view body_position_name(BodyPosition p) {
  switch (p) {
    case BodyPosition::kNone: return "none";
    case BodyPosition::kFront: return "front";
    case BodyPosition::kSide: return "side";
  }
  throw Error("unknown body position");
}

radar::Scene build_clutter(const ClutterConfig& config, Rng& rng) {
  radar::Scene scene;

  // --- The user's body: a strong cluster of torso/arm reflections. ---
  if (config.body != BodyPosition::kNone) {
    const double r = config.body_range_m;
    // Type 1 (front): torso centered behind the hand near boresight.
    // Type 2 (side): torso offset ~35 degrees to the radar's side.
    const double offset_x = config.body == BodyPosition::kFront
                                ? 0.0
                                : 0.7 * r;  // ~35 deg off boresight
    for (int i = 0; i < 10; ++i) {
      const Vec3 pos{offset_x + rng.uniform(-0.18, 0.18),
                     r + rng.uniform(-0.06, 0.10),
                     rng.uniform(-0.35, 0.25)};
      // Breathing / small sway: a few mm/s radial drift.
      const Vec3 vel{0.0, rng.uniform(-0.01, 0.01), 0.0};
      scene.push_back({pos, vel, rng.uniform(1.5, 3.5)});
    }
  }

  // --- Environment-dependent background. ---
  switch (config.environment) {
    case Environment::kPlayground:
      // Large empty area: essentially no reflectors within radar reach.
      break;
    case Environment::kCorridor: {
      // Empty static background (walls) with a few passersby far away.
      for (int i = 0; i < 4; ++i) {
        scene.push_back({Vec3{rng.uniform(-1.0, 1.0),
                              rng.uniform(1.8, 3.0),
                              rng.uniform(-0.5, 0.5)},
                         Vec3{}, rng.uniform(0.8, 2.0)});
      }
      // One distant walker.
      scene.push_back({Vec3{rng.uniform(-0.8, 0.8), rng.uniform(2.2, 3.0),
                            0.0},
                       Vec3{rng.uniform(-0.6, 0.6), rng.uniform(-0.5, 0.5),
                            0.0},
                       rng.uniform(2.0, 4.0)});
      break;
    }
    case Environment::kClassroom: {
      // Dense static furniture plus dynamic people moving around.
      for (int i = 0; i < 12; ++i) {
        scene.push_back({Vec3{rng.uniform(-1.5, 1.5),
                              rng.uniform(1.2, 3.0),
                              rng.uniform(-0.8, 0.8)},
                         Vec3{}, rng.uniform(1.0, 3.0)});
      }
      for (int i = 0; i < 3; ++i) {
        scene.push_back({Vec3{rng.uniform(-1.2, 1.2),
                              rng.uniform(1.5, 2.8), 0.0},
                         Vec3{rng.uniform(-0.8, 0.8),
                              rng.uniform(-0.6, 0.6), 0.0},
                         rng.uniform(2.0, 4.5)});
      }
      break;
    }
  }
  return scene;
}

}  // namespace mmhand::sim
