#pragma once

// Hand-to-scatterer conversion.
//
// The radar sees the hand as distributed surface reflections.  We sample
// point scatterers along each phalange and across the palm, weight them by
// a simple incidence model (patches facing the radar reflect more), and
// assign per-scatterer velocities from frame-to-frame joint motion — the
// micro-Doppler signature the paper's temporal model feeds on.

#include "mmhand/common/rng.hpp"
#include "mmhand/hand/skeleton.hpp"
#include "mmhand/radar/scatterer.hpp"

namespace mmhand::sim {

struct HandSceneConfig {
  int points_per_bone = 2;        ///< scatterers per phalange
  int palm_points = 7;            ///< scatterers across the palm surface
  double bone_amplitude = 0.12;   ///< reflectivity per finger segment
  double palm_amplitude = 3.0;    ///< total reflectivity of the palm plate
  double roughness = 0.08;        ///< multiplicative amplitude jitter
};

/// Builds the scatterer scene of one hand.  `joints` is the current frame's
/// skeleton and `prev_joints` the previous frame's (used for velocities over
/// `dt` seconds); pass the same set twice for a static hand.
radar::Scene build_hand_scene(const hand::JointSet& joints,
                              const hand::JointSet& prev_joints, double dt,
                              const HandSceneConfig& config, Rng& rng);

}  // namespace mmhand::sim
