#pragma once

// End-to-end data generation: a scenario in, (radar cube, labeled joints)
// frame records out — the substitute for the paper's 150,000-frame capture
// campaign with 10 volunteers.

#include <vector>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/hand/hand_profile.hpp"
#include "mmhand/radar/pipeline.hpp"
#include "mmhand/sim/clutter.hpp"
#include "mmhand/sim/effects.hpp"
#include "mmhand/sim/label_noise.hpp"
#include "mmhand/sim/scene.hpp"

namespace mmhand::sim {

/// A single evaluation scenario: who, where, and under which conditions.
struct ScenarioConfig {
  int user_id = 0;
  double hand_distance_m = 0.30;  ///< wrist range (paper trains 20-40 cm)
  double hand_azimuth_deg = 0.0;  ///< hand bearing (§VI-E sweeps -45..45)
  ClutterConfig clutter;
  GloveType glove = GloveType::kNone;
  HandheldObject object = HandheldObject::kNone;
  Obstacle obstacle = Obstacle::kNone;
  double duration_s = 8.0;
  std::uint64_t seed = 1;
  std::vector<hand::Gesture> vocabulary;  ///< empty = full vocabulary
  /// Optional overrides of the gesture script's motion envelope; negative
  /// values keep the GestureScriptConfig defaults.
  double wrist_drift_m = -1.0;
  double orientation_wobble_rad = -1.0;
};

/// One captured frame: the pre-processed Radar Cube plus labels.
struct FrameRecord {
  radar::RadarCube cube;
  hand::JointSet joints;       ///< noisy labels (simulated MediaPipe)
  hand::JointSet true_joints;  ///< noise-free FK joints (oracle, for tests)
  hand::Gesture gesture = hand::Gesture::kOpenPalm;
  double time_s = 0.0;
};

/// One continuous capture session.
struct Recording {
  int user_id = 0;
  std::vector<FrameRecord> frames;
};

class DatasetBuilder {
 public:
  DatasetBuilder(const radar::ChirpConfig& chirp,
                 const radar::PipelineConfig& pipeline_config,
                 const HandSceneConfig& hand_config = {},
                 const LabelNoiseConfig& label_config = {});

  /// Simulates one continuous recording of a scenario.
  Recording record(const ScenarioConfig& scenario) const;

  const radar::RadarPipeline& pipeline() const { return pipeline_; }
  const radar::ChirpConfig& chirp() const { return chirp_; }

 private:
  radar::ChirpConfig chirp_;
  radar::AntennaArray array_;
  radar::IfSimulator if_sim_;
  radar::RadarPipeline pipeline_;
  HandSceneConfig hand_config_;
  LabelNoiseConfig label_config_;
};

}  // namespace mmhand::sim
