#include "mmhand/sim/effects.hpp"

#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::sim {

std::string_view glove_name(GloveType g) {
  switch (g) {
    case GloveType::kNone: return "none";
    case GloveType::kSilk: return "silk";
    case GloveType::kCotton: return "cotton";
  }
  throw Error("unknown glove");
}

void apply_glove(radar::Scene& hand_scene, GloveType glove, Rng& rng) {
  if (glove == GloveType::kNone) return;
  // Fabric thickness and reflectivity: cotton > silk.
  const double fuzz = glove == GloveType::kSilk ? 0.004 : 0.008;
  const double material_amp = glove == GloveType::kSilk ? 0.10 : 0.18;
  const std::size_t original = hand_scene.size();
  for (std::size_t i = 0; i < original; ++i) {
    auto& s = hand_scene[i];
    // The fabric shifts the apparent reflection surface outward and blurs
    // the amplitude.
    s.position += Vec3{rng.normal(0.0, fuzz), rng.normal(0.0, fuzz),
                       rng.normal(0.0, fuzz)};
    s.amplitude *= 1.0 + rng.normal(0.0, 0.15);
    if (s.amplitude < 0.0) s.amplitude = 0.0;
    // Fabric folds add their own weak reflections near the surface.
    if (rng.bernoulli(0.5)) {
      hand_scene.push_back(
          {s.position + Vec3{rng.normal(0.0, 2.0 * fuzz),
                             rng.normal(0.0, 2.0 * fuzz),
                             rng.normal(0.0, 2.0 * fuzz)},
           s.velocity, material_amp * rng.uniform(0.3, 1.0)});
    }
  }
}

std::string_view object_name(HandheldObject o) {
  switch (o) {
    case HandheldObject::kNone: return "none";
    case HandheldObject::kTableTennisBall: return "table_tennis_ball";
    case HandheldObject::kHeadphoneCase: return "headphone_case";
    case HandheldObject::kPen: return "pen";
    case HandheldObject::kPowerBank: return "power_bank";
  }
  throw Error("unknown handheld object");
}

void apply_handheld_object(radar::Scene& scene, const hand::JointSet& joints,
                           HandheldObject object, Rng& rng) {
  if (object == HandheldObject::kNone) return;
  // Palm center & grip geometry from the posed joints.
  const Vec3 wrist = joints[hand::kWrist];
  const Vec3 middle_mcp = joints[9];
  const Vec3 palm_center = (wrist + middle_mcp) * 0.5;
  const Vec3 grip_axis = (joints[8] - joints[5]).norm() > 1e-6
                             ? (middle_mcp - wrist).normalized()
                             : Vec3{0.0, 0.0, 1.0};

  switch (object) {
    case HandheldObject::kTableTennisBall:
      // Small dielectric sphere: a couple of weak glints at the palm.
      for (int i = 0; i < 3; ++i)
        scene.push_back({palm_center + Vec3{rng.normal(0.0, 0.012),
                                            rng.normal(0.0, 0.012),
                                            rng.normal(0.0, 0.012)},
                         Vec3{}, rng.uniform(0.10, 0.25)});
      break;
    case HandheldObject::kHeadphoneCase:
      // Medium plastic box in the palm: moderate cluster.
      for (int i = 0; i < 5; ++i)
        scene.push_back({palm_center + Vec3{rng.normal(0.0, 0.02),
                                            rng.normal(0.0, 0.02),
                                            rng.normal(0.0, 0.02)},
                         Vec3{}, rng.uniform(0.3, 0.7)});
      break;
    case HandheldObject::kPen: {
      // An elongated reflector extending past the fingertips along the
      // grip axis — the geometry mmHand misreads as an extra finger.
      const Vec3 tip_region = joints[8];  // index fingertip
      for (int i = 0; i < 6; ++i) {
        const double t = rng.uniform(-0.02, 0.10);
        scene.push_back({tip_region + grip_axis * t +
                             Vec3{rng.normal(0.0, 0.003),
                                  rng.normal(0.0, 0.003),
                                  rng.normal(0.0, 0.003)},
                         Vec3{}, rng.uniform(0.25, 0.5)});
      }
      break;
    }
    case HandheldObject::kPowerBank: {
      // Large flat metal-cased plate covering the palm and fingers: strong
      // reflections that also shadow the hand behind it.
      for (int i = 0; i < 10; ++i)
        scene.push_back(
            {palm_center + grip_axis * rng.uniform(-0.02, 0.08) +
                 Vec3{rng.normal(0.0, 0.03), rng.normal(0.0, 0.015),
                      rng.normal(0.0, 0.03)},
             Vec3{}, rng.uniform(1.0, 2.2)});
      // Shadowing: the plate sits between radar and most of the hand.
      for (auto& s : scene)
        if (s.amplitude < 1.0) s.amplitude *= 0.45;
      break;
    }
    case HandheldObject::kNone:
      break;
  }
}

std::string_view obstacle_name(Obstacle o) {
  switch (o) {
    case Obstacle::kNone: return "none";
    case Obstacle::kPaper: return "a4_paper";
    case Obstacle::kCloth: return "cloth";
    case Obstacle::kBoard: return "wood_board";
  }
  throw Error("unknown obstacle");
}

void apply_obstacle(radar::Scene& scene, Obstacle obstacle, Rng& rng) {
  if (obstacle == Obstacle::kNone) return;
  double attenuation = 1.0, scatter = 0.0, self_amp = 0.0, speckle = 0.0;
  switch (obstacle) {
    case Obstacle::kPaper:
      attenuation = 0.88;
      scatter = 0.003;
      self_amp = 0.3;
      speckle = 0.12;
      break;
    case Obstacle::kCloth:
      attenuation = 0.80;
      scatter = 0.005;
      self_amp = 0.4;
      speckle = 0.20;
      break;
    case Obstacle::kBoard:
      attenuation = 0.40;
      scatter = 0.024;
      self_amp = 1.2;
      speckle = 0.70;
      break;
    case Obstacle::kNone:
      break;
  }
  // Two-way penetration loss, diffuse in-material scattering (apparent
  // position smear growing with thickness) and per-path speckle (random
  // multipath gain inside the material).  The smear is what actually costs
  // accuracy: log-domain attenuation alone only dims the cube uniformly.
  for (auto& s : scene) {
    s.amplitude *= attenuation * attenuation *
                   std::max(0.1, 1.0 + rng.normal(0.0, speckle));
    s.position += Vec3{rng.normal(0.0, scatter), rng.normal(0.0, scatter),
                       rng.normal(0.0, scatter)};
  }
  // The obstacle's own front-face reflection ~12 cm in front of the radar.
  for (int i = 0; i < 4; ++i)
    scene.push_back({Vec3{rng.uniform(-0.10, 0.10), 0.12,
                          rng.uniform(-0.10, 0.10)},
                     Vec3{}, self_amp * rng.uniform(0.6, 1.2)});
}

}  // namespace mmhand::sim
