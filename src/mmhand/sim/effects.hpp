#pragma once

// Special-situation effect models (§VI-G/H/J).
//
// Gloves distort the sensed hand (material reflections around the true
// surface), handheld objects add their own reflections — a pen reads as an
// extra finger, a power bank masks the hand — and obstacles between radar
// and hand attenuate and scatter the signal (paper < cloth < wooden board).

#include <string_view>

#include "mmhand/common/rng.hpp"
#include "mmhand/hand/skeleton.hpp"
#include "mmhand/radar/scatterer.hpp"

namespace mmhand::sim {

enum class GloveType { kNone, kSilk, kCotton };
std::string_view glove_name(GloveType g);

/// Applies a glove to a hand scatterer scene: positional fuzz from the
/// fabric surface plus extra low-amplitude material scatterers.  Cotton is
/// thicker than silk and distorts more.
void apply_glove(radar::Scene& hand_scene, GloveType glove, Rng& rng);

enum class HandheldObject { kNone, kTableTennisBall, kHeadphoneCase, kPen,
                            kPowerBank };
std::string_view object_name(HandheldObject o);

/// Adds a handheld object's reflections to the scene.  Needs the current
/// joints to place the object in the palm / along the grip axis.
/// - ball / headphone case: small clusters at the palm center (§VI-H: only
///   slight interference);
/// - pen: an elongated line of scatterers extending past the fingers (the
///   paper reports mmHand mistakes it for a finger);
/// - power bank: a large strong plate covering the hand that also shadows
///   the hand's own reflections.
void apply_handheld_object(radar::Scene& scene, const hand::JointSet& joints,
                           HandheldObject object, Rng& rng);

enum class Obstacle { kNone, kPaper, kCloth, kBoard };
std::string_view obstacle_name(Obstacle o);

/// Applies an obstacle between radar and hand: attenuates every scene
/// scatterer, adds scattering jitter, and inserts the obstacle's own
/// reflection plane close to the radar.
void apply_obstacle(radar::Scene& scene, Obstacle obstacle, Rng& rng);

}  // namespace mmhand::sim
