#include "mmhand/sim/scene.hpp"

#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::sim {

namespace {

/// Incidence factor: patches whose outward direction faces the radar
/// (origin) reflect more strongly.  `normal_hint` is an approximate surface
/// direction; the factor blends specular preference with a diffuse floor.
double incidence_factor(const Vec3& position, const Vec3& normal_hint) {
  const Vec3 to_radar = (-position).normalized();
  const Vec3 n = normal_hint.normalized();
  const double facing = std::max(0.0, to_radar.dot(n));
  return 0.35 + 0.65 * facing;
}

}  // namespace

radar::Scene build_hand_scene(const hand::JointSet& joints,
                              const hand::JointSet& prev_joints, double dt,
                              const HandSceneConfig& config, Rng& rng) {
  MMHAND_CHECK(dt > 0.0, "scene dt " << dt);
  MMHAND_CHECK(config.points_per_bone >= 1 && config.palm_points >= 1,
               "scene point counts");
  radar::Scene scene;
  scene.reserve(static_cast<std::size_t>(
      hand::kNumBones * config.points_per_bone + config.palm_points));

  auto jitter = [&] { return 1.0 + rng.normal(0.0, config.roughness); };
  auto velocity_of = [&](const Vec3& cur, const Vec3& prev) {
    return (cur - prev) / dt;
  };

  // Palm surface: wrist-to-MCP fan.  The palm normal is approximated by the
  // cross product of two palm edges.
  const Vec3 wrist = joints[hand::kWrist];
  const Vec3 wrist_prev = prev_joints[hand::kWrist];
  const Vec3 index_mcp = joints[5], pinky_mcp = joints[17];
  const Vec3 palm_normal =
      (index_mcp - wrist).cross(pinky_mcp - wrist).normalized();
  for (int i = 0; i < config.palm_points; ++i) {
    // Barycentric spread across the wrist/index-MCP/pinky-MCP triangle.
    const double u = rng.uniform(0.05, 0.95);
    const double v = rng.uniform(0.05, 0.95 - u * 0.9);
    const Vec3 pos = wrist + (index_mcp - wrist) * u + (pinky_mcp - wrist) * v;
    const Vec3 prev = wrist_prev +
                      (prev_joints[5] - wrist_prev) * u +
                      (prev_joints[17] - wrist_prev) * v;
    scene.push_back({pos, velocity_of(pos, prev),
                     config.palm_amplitude / config.palm_points *
                         incidence_factor(pos, palm_normal) * jitter()});
  }

  // Finger segments: points along each bone, reflectivity oriented by the
  // bone's lateral surface (approximated with the palm normal).
  for (int child = 1; child < hand::kNumJoints; ++child) {
    const int parent = hand::joint_parent(child);
    const auto ci = static_cast<std::size_t>(child);
    const auto pi = static_cast<std::size_t>(parent);
    for (int k = 0; k < config.points_per_bone; ++k) {
      const double t = (static_cast<double>(k) + 0.5) /
                       static_cast<double>(config.points_per_bone);
      const Vec3 pos = joints[pi] + (joints[ci] - joints[pi]) * t;
      const Vec3 prev =
          prev_joints[pi] + (prev_joints[ci] - prev_joints[pi]) * t;
      scene.push_back({pos, velocity_of(pos, prev),
                       config.bone_amplitude / config.points_per_bone *
                           incidence_factor(pos, palm_normal) * jitter()});
    }
  }
  return scene;
}

}  // namespace mmhand::sim
