#include "mmhand/sim/label_noise.hpp"

namespace mmhand::sim {

hand::JointSet apply_label_noise(const hand::JointSet& joints,
                                 const LabelNoiseConfig& config, Rng& rng) {
  hand::JointSet noisy = joints;
  if (config.stddev_m <= 0.0) return noisy;
  for (auto& j : noisy)
    j += Vec3{rng.normal(0.0, config.stddev_m),
              rng.normal(0.0, config.stddev_m),
              rng.normal(0.0, config.stddev_m)};
  return noisy;
}

}  // namespace mmhand::sim
