#pragma once

// Spectrum utilities: magnitudes, peak picking, and dB conversion used by
// the radar pipeline and by diagnostics in the examples.

#include <complex>
#include <span>
#include <vector>

namespace mmhand::dsp {

/// |X_k| for every bin.
std::vector<double> magnitude(std::span<const std::complex<double>> x);

/// 20*log10(|X_k| + eps).
std::vector<double> magnitude_db(std::span<const std::complex<double>> x,
                                 double eps = 1e-12);

struct Peak {
  std::size_t bin = 0;
  double value = 0.0;
};

/// Local maxima above `min_value`, strongest first, at most `max_peaks`.
/// A bin is a peak when strictly greater than both neighbours (edges
/// compare against the single existing neighbour).
std::vector<Peak> find_peaks(std::span<const double> mag, double min_value,
                             std::size_t max_peaks);

/// Index of the strongest bin.
std::size_t argmax(std::span<const double> mag);

}  // namespace mmhand::dsp
