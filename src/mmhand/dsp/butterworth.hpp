#pragma once

// Butterworth bandpass design and zero-phase filtering (§III).
//
// mmHand "filters the raw mmWave signals through an 8-order bandpass
// Butterworth filter and preserves signals related to the hand": the beat
// frequency of an FMCW return is proportional to target range, so a bandpass
// over the hand's range band (20-40 cm in the paper's setup) suppresses the
// body and furniture clutter before the range-FFT.

#include <complex>
#include <span>
#include <vector>

#include "mmhand/common/aligned.hpp"

namespace mmhand::dsp {

/// One second-order section (biquad), normalized so a0 == 1.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

/// A cascade of biquads with an overall gain.
class SosFilter {
 public:
  SosFilter() = default;
  SosFilter(std::vector<Biquad> sections, double gain);

  /// Runs the cascade over a real signal (direct form II transposed).
  std::vector<double> filter(std::span<const double> x) const;

  /// Zero-phase filtering: forward pass, then backward pass, with
  /// reflected-edge padding to suppress startup transients.
  std::vector<double> filtfilt(std::span<const double> x) const;

  /// Zero-phase filtering of a complex signal (real filter applied to the
  /// real and imaginary parts independently).
  std::vector<std::complex<double>> filtfilt(
      std::span<const std::complex<double>> x) const;

  /// Zero-phase filters `count` equal-length complex signals in place
  /// (signal i occupies data[i*len, (i+1)*len)).  With the scalar ISA
  /// this loops the per-signal `filtfilt` above — bitwise identical to
  /// pre-batch behavior; on vector ISAs the real/imaginary components
  /// ride the SIMD lanes of a batched biquad cascade (channel-major,
  /// one lane per real channel), within 1e-9 relative of scalar.
  void filtfilt_batch(std::complex<double>* data, std::size_t len,
                      std::size_t count) const;

  /// Complex frequency response at normalized frequency f in cycles/sample.
  std::complex<double> response(double f) const;

  const std::vector<Biquad>& sections() const { return sections_; }
  double gain() const { return gain_; }

 private:
  std::vector<Biquad> sections_;
  double gain_ = 1.0;
  /// Sections flattened to [b0 b1 b2 a1 a2] runs for the lane-batched
  /// kernel, packed once at construction so `filtfilt_batch` stays
  /// allocation-free per call.
  aligned_vector<double> packed_coeffs_;
};

/// Designs a digital Butterworth bandpass via the bilinear transform.
///
/// `order` is the total filter order and must be even; the underlying
/// lowpass prototype has order/2 poles (scipy's butter(N, ..) "bandpass"
/// yields order 2N — the paper's 8th-order filter corresponds to N = 4).
/// f_lo/f_hi are the -3 dB edges in Hz, fs the sample rate in Hz.
SosFilter butterworth_bandpass(int order, double f_lo, double f_hi,
                               double fs);

}  // namespace mmhand::dsp
