#pragma once

// Cell-averaging CFAR (constant false-alarm rate) detection.
//
// Real mmWave stacks detect targets by comparing each cell against the
// local noise estimate from surrounding training cells.  mmHand's network
// consumes the full cube, but the CFAR path provides an interpretable
// detection view used by the point-cloud extractor and diagnostics.

#include <span>
#include <vector>

namespace mmhand::dsp {

struct CfarConfig {
  int training_cells = 8;  ///< cells per side used for the noise estimate
  int guard_cells = 2;     ///< cells per side excluded around the CUT
  double threshold_factor = 3.0;  ///< detection factor over the estimate
};

struct CfarDetection {
  std::size_t index = 0;
  double value = 0.0;
  double noise_estimate = 0.0;
};

/// 1-D CA-CFAR over a magnitude profile.  Edges use the available one-sided
/// window.  Returns all cells exceeding factor * noise_estimate.
std::vector<CfarDetection> cfar_1d(std::span<const double> magnitude,
                                   const CfarConfig& config = {});

}  // namespace mmhand::dsp
