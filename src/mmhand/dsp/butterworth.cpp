#include "mmhand/dsp/butterworth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mmhand/common/aligned.hpp"
#include "mmhand/common/error.hpp"
#include "mmhand/common/parallel.hpp"
#include "mmhand/common/realtime.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::dsp {

namespace {

constexpr double kPi = std::numbers::pi;
using Cd = std::complex<double>;

/// Grows-on-demand per-thread scratch for the lane-batched biquad
/// cascade: allocation-free once warmed up (audited in
/// scripts/purity_allowlist.json).
double* biquad_scratch(std::size_t doubles) {
  thread_local aligned_vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

}  // namespace

SosFilter::SosFilter(std::vector<Biquad> sections, double gain)
    : sections_(std::move(sections)), gain_(gain) {
  packed_coeffs_.resize(sections_.size() * 5);
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    packed_coeffs_[5 * s + 0] = sections_[s].b0;
    packed_coeffs_[5 * s + 1] = sections_[s].b1;
    packed_coeffs_[5 * s + 2] = sections_[s].b2;
    packed_coeffs_[5 * s + 3] = sections_[s].a1;
    packed_coeffs_[5 * s + 4] = sections_[s].a2;
  }
}

std::vector<double> SosFilter::filter(std::span<const double> x) const {
  std::vector<double> y(x.begin(), x.end());
  for (const Biquad& s : sections_) {
    double z1 = 0.0, z2 = 0.0;
    for (double& v : y) {
      const double in = v;
      const double out = s.b0 * in + z1;
      z1 = s.b1 * in - s.a1 * out + z2;
      z2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  for (double& v : y) v *= gain_;
  return y;
}

std::vector<double> SosFilter::filtfilt(std::span<const double> x) const {
  MMHAND_CHECK(x.size() >= 2, "filtfilt needs >= 2 samples");
  // Odd-reflection padding on both edges (scipy-style) to reduce startup
  // transients; pad length bounded by signal size.
  const std::size_t pad =
      std::min<std::size_t>(x.size() - 1, 3 * (2 * sections_.size() + 1));
  std::vector<double> ext;
  ext.reserve(x.size() + 2 * pad);
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x[0] - x[pad - i]);
  ext.insert(ext.end(), x.begin(), x.end());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x[n - 1] - x[n - 2 - i]);

  std::vector<double> fwd = filter(ext);
  std::reverse(fwd.begin(), fwd.end());
  std::vector<double> bwd = filter(fwd);
  std::reverse(bwd.begin(), bwd.end());
  return {bwd.begin() + static_cast<std::ptrdiff_t>(pad),
          bwd.begin() + static_cast<std::ptrdiff_t>(pad + n)};
}

std::vector<Cd> SosFilter::filtfilt(std::span<const Cd> x) const {
  std::vector<double> re(x.size()), im(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
  const auto fre = filtfilt(std::span<const double>(re));
  const auto fim = filtfilt(std::span<const double>(im));
  std::vector<Cd> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = Cd{fre[i], fim[i]};
  return y;
}

MMHAND_REALTIME
void SosFilter::filtfilt_batch(Cd* data, std::size_t len,
                               std::size_t count) const {
  MMHAND_CHECK(len >= 2, "filtfilt needs >= 2 samples");
  if (count == 0) return;

  if (simd::active_isa() == simd::Isa::kScalar) {
    // Reference path: per-signal filtfilt, same op order as the
    // pre-batch pipeline loop — scalar results stay bitwise identical.
    parallel_for(0, static_cast<std::int64_t>(count), 1,
                 [&](std::int64_t i) {
                   Cd* sig = data + static_cast<std::size_t>(i) * len;
                   const auto y = filtfilt(std::span<const Cd>(sig, len));
                   std::copy(y.begin(), y.end(), sig);
                 });
    return;
  }

  // Vector path: each complex signal contributes two real channels
  // (re, im) that occupy adjacent SIMD lanes; a block fills all
  // `width` lanes with width/2 signals.  Block membership is fixed by
  // index, so results do not depend on the thread count.
  const auto& kernels = simd::kernels();
  const std::size_t width = static_cast<std::size_t>(kernels.width);
  const std::size_t per_block = std::max<std::size_t>(1, width / 2);
  const std::size_t nsec = sections_.size();
  const std::size_t pad =
      std::min<std::size_t>(len - 1, 3 * (2 * nsec + 1));
  const std::size_t ext = len + 2 * pad;
  const double* coeffs = packed_coeffs_.data();

  const std::int64_t blocks =
      static_cast<std::int64_t>((count + per_block - 1) / per_block);
  parallel_for(0, blocks, 1, [&](std::int64_t b) {
    double* x = biquad_scratch(ext * width);
    const std::size_t first = static_cast<std::size_t>(b) * per_block;
    const std::size_t in_block = std::min(per_block, count - first);
    for (std::size_t p = 0; p < per_block; ++p) {
      // Duplicate the last signal into unused lanes so every lane holds
      // finite data; their results are simply not written back.
      const std::size_t sig_idx = first + std::min(p, in_block - 1);
      const Cd* sig = data + sig_idx * len;
      const std::size_t lr = 2 * p, li = 2 * p + 1 < width ? 2 * p + 1 : lr;
      for (std::size_t t = 0; t < len; ++t) {
        x[(pad + t) * width + lr] = sig[t].real();
        x[(pad + t) * width + li] = sig[t].imag();
      }
      // Odd reflection around both edges, matching `filtfilt`.
      for (std::size_t i = 0; i < pad; ++i) {
        x[i * width + lr] = 2.0 * sig[0].real() - sig[pad - i].real();
        x[i * width + li] = 2.0 * sig[0].imag() - sig[pad - i].imag();
        x[(pad + len + i) * width + lr] =
            2.0 * sig[len - 1].real() - sig[len - 2 - i].real();
        x[(pad + len + i) * width + li] =
            2.0 * sig[len - 1].imag() - sig[len - 2 - i].imag();
      }
    }
    kernels.sos_lanes(x, ext, coeffs, nsec, gain_, +1);
    kernels.sos_lanes(x, ext, coeffs, nsec, gain_, -1);
    for (std::size_t p = 0; p < in_block; ++p) {
      Cd* sig = data + (first + p) * len;
      const std::size_t lr = 2 * p, li = 2 * p + 1 < width ? 2 * p + 1 : lr;
      for (std::size_t t = 0; t < len; ++t)
        sig[t] = Cd{x[(pad + t) * width + lr], x[(pad + t) * width + li]};
    }
  });
}

Cd SosFilter::response(double f) const {
  const Cd z = std::polar(1.0, 2.0 * kPi * f);
  const Cd zi = 1.0 / z;
  Cd h{gain_, 0.0};
  for (const Biquad& s : sections_) {
    const Cd num = s.b0 + s.b1 * zi + s.b2 * zi * zi;
    const Cd den = 1.0 + s.a1 * zi + s.a2 * zi * zi;
    h *= num / den;
  }
  return h;
}

SosFilter butterworth_bandpass(int order, double f_lo, double f_hi,
                               double fs) {
  MMHAND_CHECK(order >= 2 && order % 2 == 0,
               "bandpass order must be even, got " << order);
  MMHAND_CHECK(0.0 < f_lo && f_lo < f_hi && f_hi < fs / 2.0,
               "band edges lo=" << f_lo << " hi=" << f_hi << " fs=" << fs);
  const int n = order / 2;  // lowpass prototype order

  // Pre-warp the band edges for the bilinear transform.
  const double fs2 = 2.0 * fs;
  const double w1 = fs2 * std::tan(kPi * f_lo / fs);
  const double w2 = fs2 * std::tan(kPi * f_hi / fs);
  const double bw = w2 - w1;
  const double w0 = std::sqrt(w1 * w2);

  // Lowpass prototype poles on the unit circle's left half.
  std::vector<Cd> analog_poles;
  analog_poles.reserve(static_cast<std::size_t>(2 * n));
  for (int k = 0; k < n; ++k) {
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * n) + kPi / 2.0;
    const Cd p = std::polar(1.0, theta);
    // Lowpass -> bandpass: each prototype pole spawns the two roots of
    // s^2 - p*bw*s + w0^2 = 0.
    const Cd pb = p * (bw / 2.0);
    const Cd disc = std::sqrt(pb * pb - Cd{w0 * w0, 0.0});
    analog_poles.push_back(pb + disc);
    analog_poles.push_back(pb - disc);
  }

  // Bilinear transform of poles; zeros map to z = +1 (n of them, from the
  // analog zeros at s = 0) and z = -1 (n of them, from s = infinity).
  std::vector<Cd> zpoles;
  zpoles.reserve(analog_poles.size());
  for (const Cd& s : analog_poles) zpoles.push_back((fs2 + s) / (fs2 - s));

  // Pair poles into biquads.  The lowpass->bandpass transform produces
  // conjugate-symmetric pole sets; sort by imaginary part magnitude and pair
  // each pole with its conjugate.
  std::vector<Cd> upper;
  for (const Cd& p : zpoles)
    if (p.imag() >= 0.0) upper.push_back(p);
  MMHAND_CHECK(upper.size() == static_cast<std::size_t>(n),
               "pole pairing failed: " << upper.size() << " upper poles");

  std::vector<Biquad> sections;
  sections.reserve(upper.size());
  for (std::size_t i = 0; i < upper.size(); ++i) {
    const Cd p = upper[i];
    Biquad s;
    // Denominator (z - p)(z - conj(p)): a1 = -2 Re(p), a2 = |p|^2.
    s.a1 = -2.0 * p.real();
    s.a2 = std::norm(p);
    // Numerator (z - 1)(z + 1) = z^2 - 1: one zero at +1, one at -1.
    s.b0 = 1.0;
    s.b1 = 0.0;
    s.b2 = -1.0;
    sections.push_back(s);
  }

  // Normalize gain to unity at the digital center frequency.
  const double f_center_analog = w0 / fs2;  // tan(pi*f_c/fs)
  const double f_center = std::atan(f_center_analog) * fs / kPi;
  SosFilter unnormalized(sections, 1.0);
  const double mag = std::abs(unnormalized.response(f_center / fs));
  MMHAND_CHECK(mag > 1e-12, "degenerate bandpass gain");
  return SosFilter(std::move(sections), 1.0 / mag);
}

}  // namespace mmhand::dsp
