#include "mmhand/dsp/butterworth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "mmhand/common/error.hpp"

namespace mmhand::dsp {

namespace {

constexpr double kPi = std::numbers::pi;
using Cd = std::complex<double>;

}  // namespace

SosFilter::SosFilter(std::vector<Biquad> sections, double gain)
    : sections_(std::move(sections)), gain_(gain) {}

std::vector<double> SosFilter::filter(std::span<const double> x) const {
  std::vector<double> y(x.begin(), x.end());
  for (const Biquad& s : sections_) {
    double z1 = 0.0, z2 = 0.0;
    for (double& v : y) {
      const double in = v;
      const double out = s.b0 * in + z1;
      z1 = s.b1 * in - s.a1 * out + z2;
      z2 = s.b2 * in - s.a2 * out;
      v = out;
    }
  }
  for (double& v : y) v *= gain_;
  return y;
}

std::vector<double> SosFilter::filtfilt(std::span<const double> x) const {
  MMHAND_CHECK(x.size() >= 2, "filtfilt needs >= 2 samples");
  // Odd-reflection padding on both edges (scipy-style) to reduce startup
  // transients; pad length bounded by signal size.
  const std::size_t pad =
      std::min<std::size_t>(x.size() - 1, 3 * (2 * sections_.size() + 1));
  std::vector<double> ext;
  ext.reserve(x.size() + 2 * pad);
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x[0] - x[pad - i]);
  ext.insert(ext.end(), x.begin(), x.end());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < pad; ++i)
    ext.push_back(2.0 * x[n - 1] - x[n - 2 - i]);

  std::vector<double> fwd = filter(ext);
  std::reverse(fwd.begin(), fwd.end());
  std::vector<double> bwd = filter(fwd);
  std::reverse(bwd.begin(), bwd.end());
  return {bwd.begin() + static_cast<std::ptrdiff_t>(pad),
          bwd.begin() + static_cast<std::ptrdiff_t>(pad + n)};
}

std::vector<Cd> SosFilter::filtfilt(std::span<const Cd> x) const {
  std::vector<double> re(x.size()), im(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
  const auto fre = filtfilt(std::span<const double>(re));
  const auto fim = filtfilt(std::span<const double>(im));
  std::vector<Cd> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = Cd{fre[i], fim[i]};
  return y;
}

Cd SosFilter::response(double f) const {
  const Cd z = std::polar(1.0, 2.0 * kPi * f);
  const Cd zi = 1.0 / z;
  Cd h{gain_, 0.0};
  for (const Biquad& s : sections_) {
    const Cd num = s.b0 + s.b1 * zi + s.b2 * zi * zi;
    const Cd den = 1.0 + s.a1 * zi + s.a2 * zi * zi;
    h *= num / den;
  }
  return h;
}

SosFilter butterworth_bandpass(int order, double f_lo, double f_hi,
                               double fs) {
  MMHAND_CHECK(order >= 2 && order % 2 == 0,
               "bandpass order must be even, got " << order);
  MMHAND_CHECK(0.0 < f_lo && f_lo < f_hi && f_hi < fs / 2.0,
               "band edges lo=" << f_lo << " hi=" << f_hi << " fs=" << fs);
  const int n = order / 2;  // lowpass prototype order

  // Pre-warp the band edges for the bilinear transform.
  const double fs2 = 2.0 * fs;
  const double w1 = fs2 * std::tan(kPi * f_lo / fs);
  const double w2 = fs2 * std::tan(kPi * f_hi / fs);
  const double bw = w2 - w1;
  const double w0 = std::sqrt(w1 * w2);

  // Lowpass prototype poles on the unit circle's left half.
  std::vector<Cd> analog_poles;
  analog_poles.reserve(static_cast<std::size_t>(2 * n));
  for (int k = 0; k < n; ++k) {
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * n) + kPi / 2.0;
    const Cd p = std::polar(1.0, theta);
    // Lowpass -> bandpass: each prototype pole spawns the two roots of
    // s^2 - p*bw*s + w0^2 = 0.
    const Cd pb = p * (bw / 2.0);
    const Cd disc = std::sqrt(pb * pb - Cd{w0 * w0, 0.0});
    analog_poles.push_back(pb + disc);
    analog_poles.push_back(pb - disc);
  }

  // Bilinear transform of poles; zeros map to z = +1 (n of them, from the
  // analog zeros at s = 0) and z = -1 (n of them, from s = infinity).
  std::vector<Cd> zpoles;
  zpoles.reserve(analog_poles.size());
  for (const Cd& s : analog_poles) zpoles.push_back((fs2 + s) / (fs2 - s));

  // Pair poles into biquads.  The lowpass->bandpass transform produces
  // conjugate-symmetric pole sets; sort by imaginary part magnitude and pair
  // each pole with its conjugate.
  std::vector<Cd> upper;
  for (const Cd& p : zpoles)
    if (p.imag() >= 0.0) upper.push_back(p);
  MMHAND_CHECK(upper.size() == static_cast<std::size_t>(n),
               "pole pairing failed: " << upper.size() << " upper poles");

  std::vector<Biquad> sections;
  sections.reserve(upper.size());
  for (std::size_t i = 0; i < upper.size(); ++i) {
    const Cd p = upper[i];
    Biquad s;
    // Denominator (z - p)(z - conj(p)): a1 = -2 Re(p), a2 = |p|^2.
    s.a1 = -2.0 * p.real();
    s.a2 = std::norm(p);
    // Numerator (z - 1)(z + 1) = z^2 - 1: one zero at +1, one at -1.
    s.b0 = 1.0;
    s.b1 = 0.0;
    s.b2 = -1.0;
    sections.push_back(s);
  }

  // Normalize gain to unity at the digital center frequency.
  const double f_center_analog = w0 / fs2;  // tan(pi*f_c/fs)
  const double f_center = std::atan(f_center_analog) * fs / kPi;
  SosFilter unnormalized(sections, 1.0);
  const double mag = std::abs(unnormalized.response(f_center / fs));
  MMHAND_CHECK(mag > 1e-12, "degenerate bandpass gain");
  return SosFilter(std::move(sections), 1.0 / mag);
}

}  // namespace mmhand::dsp
