#pragma once

// Fourier transforms for the radar pre-processing pipeline (§III).
//
// mmHand derives range, velocity and angle information "through a series of
// FFT operations".  We provide an iterative radix-2 FFT for power-of-two
// sizes, a Bluestein fallback for arbitrary sizes, and a chirp-Z transform
// used by the zoom-FFT angle refinement.

#include <complex>
#include <span>
#include <vector>

namespace mmhand::dsp {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT.  Size must be a power of
/// two.  When `inverse`, computes the inverse transform including the 1/N
/// normalization.
void fft_pow2_inplace(std::vector<Complex>& x, bool inverse);

/// FFT of arbitrary size (radix-2 when possible, Bluestein otherwise).
std::vector<Complex> fft(std::span<const Complex> x);

/// Inverse FFT of arbitrary size (includes 1/N normalization).
std::vector<Complex> ifft(std::span<const Complex> x);

/// FFT of a real signal; returns the full complex spectrum of length n.
std::vector<Complex> fft_real(std::span<const double> x);

/// Swaps the two halves of a spectrum so that bin 0 (DC) is centered.
/// For odd n the extra element stays with the upper half, matching numpy.
std::vector<Complex> fft_shift(std::span<const Complex> x);

/// Chirp-Z transform: evaluates the z-transform of x at the m points
/// a * w^-k, k = 0..m-1.  Used to zoom into a narrow frequency band with a
/// finer grid than the plain FFT provides.
std::vector<Complex> czt(std::span<const Complex> x, std::size_t m, Complex w,
                         Complex a);

/// Zoom-FFT: spectrum of x evaluated on `bins` evenly spaced normalized
/// frequencies in [f_lo, f_hi) (cycles/sample, in [-0.5, 0.5)).  A zoom-FFT
/// with refinement factor 2 evaluates the same band at twice the density of
/// the plain FFT (§III: angle-FFT refinement).
std::vector<Complex> zoom_fft(std::span<const Complex> x, double f_lo,
                              double f_hi, std::size_t bins);

}  // namespace mmhand::dsp
