#pragma once

// Fourier transforms for the radar pre-processing pipeline (§III).
//
// mmHand derives range, velocity and angle information "through a series of
// FFT operations".  We provide an iterative radix-2 FFT for power-of-two
// sizes, a Bluestein fallback for arbitrary sizes, and a chirp-Z transform
// used by the zoom-FFT angle refinement.
//
// Two execution paths coexist (DESIGN §9).  With the scalar ISA active
// every entry point runs the original reference code, bitwise identical
// to pre-SIMD builds.  With a vector ISA the power-of-two transforms run
// on split-complex (SoA) layouts through the simd/ kernel table, and the
// CZT/zoom path amortizes its chirp factors and kernel spectrum in a
// cached `CztPlan`; vector results agree with scalar to 1e-9 relative.

#include <complex>
#include <span>
#include <vector>

#include "mmhand/common/aligned.hpp"

namespace mmhand::dsp {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT.  Size must be a power of
/// two.  When `inverse`, computes the inverse transform including the 1/N
/// normalization.  Always the scalar reference path.
void fft_pow2_inplace(std::vector<Complex>& x, bool inverse);

/// FFT of arbitrary size (radix-2 when possible, Bluestein otherwise).
std::vector<Complex> fft(std::span<const Complex> x);

/// Inverse FFT of arbitrary size (includes 1/N normalization).
std::vector<Complex> ifft(std::span<const Complex> x);

/// FFT of a real signal; returns the full complex spectrum of length n.
/// On vector ISAs power-of-two sizes use the real-input specialization
/// (half-size complex FFT plus untangling).
std::vector<Complex> fft_real(std::span<const double> x);

/// Swaps the two halves of a spectrum so that bin 0 (DC) is centered.
/// For odd n the extra element stays with the upper half, matching numpy.
std::vector<Complex> fft_shift(std::span<const Complex> x);

/// Chirp-Z transform: evaluates the z-transform of x at the m points
/// a * w^-k, k = 0..m-1.  Used to zoom into a narrow frequency band with a
/// finer grid than the plain FFT provides.
std::vector<Complex> czt(std::span<const Complex> x, std::size_t m, Complex w,
                         Complex a);

/// Zoom-FFT: spectrum of x evaluated on `bins` evenly spaced normalized
/// frequencies in [f_lo, f_hi) (cycles/sample, in [-0.5, 0.5)).  A zoom-FFT
/// with refinement factor 2 evaluates the same band at twice the density of
/// the plain FFT (§III: angle-FFT refinement).
std::vector<Complex> zoom_fft(std::span<const Complex> x, double f_lo,
                              double f_hi, std::size_t bins);

/// Lane-batched power-of-two FFT on the active SIMD kernels.  re/im hold
/// n * simd::kernels().width doubles: element k of lane l at [k*W + l].
void fft_lanes_pow2(double* re, double* im, std::size_t n, bool inverse);

/// Single-signal split-complex power-of-two FFT on the active SIMD
/// kernels (vectorized across the butterfly index).
void fft_soa_pow2(double* re, double* im, std::size_t n, bool inverse);

/// Precomputed Bluestein evaluation of one CZT geometry (n input points,
/// m output points, fixed w and a).  Construction is scalar and
/// ISA-independent: the chirp factors and the FFT of the convolution
/// kernel are computed once, replacing three polar/pow-heavy transforms
/// per call with two power-of-two FFTs.
class CztPlan {
 public:
  CztPlan(std::size_t n, std::size_t m, Complex w, Complex a);

  std::size_t input_size() const { return n_; }
  std::size_t output_size() const { return m_; }

  /// Evaluates one signal (x.size() == input_size()) on the active
  /// SIMD kernels; used by the vector path of `zoom_fft`.
  std::vector<Complex> run(std::span<const Complex> x) const;

  /// Evaluates simd::kernels().width signals at once.  re/im hold
  /// input_size()*W doubles lane-batched; out_re/out_im receive
  /// output_size()*W doubles in the same layout.
  void run_lanes(const double* re, const double* im, double* out_re,
                 double* out_im) const;

 private:
  std::size_t n_, m_, conv_;
  aligned_vector<double> fa_re_, fa_im_;      ///< a^-i * w^{i^2/2}, i < n
  aligned_vector<double> fb_re_, fb_im_;      ///< FFT of the chirp kernel
  aligned_vector<double> out_re_, out_im_;    ///< w^{k^2/2}, k < m
};

/// Cached plan for `zoom_fft(x, f_lo, f_hi, bins)` with x.size() == n.
/// Plans are built once per geometry and never evicted, so the returned
/// reference stays valid for the process lifetime (same contract as the
/// twiddle cache).
const CztPlan& zoom_plan(std::size_t n, double f_lo, double f_hi,
                         std::size_t bins);

}  // namespace mmhand::dsp
