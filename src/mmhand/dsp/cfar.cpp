#include "mmhand/dsp/cfar.hpp"

#include "mmhand/common/error.hpp"

namespace mmhand::dsp {

std::vector<CfarDetection> cfar_1d(std::span<const double> magnitude,
                                   const CfarConfig& config) {
  MMHAND_CHECK(config.training_cells >= 1 && config.guard_cells >= 0,
               "CFAR window");
  MMHAND_CHECK(config.threshold_factor > 0.0, "CFAR threshold factor");
  const int n = static_cast<int>(magnitude.size());
  std::vector<CfarDetection> detections;
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    int count = 0;
    // Leading and lagging training windows, skipping the guard band.
    for (int side : {-1, 1}) {
      for (int k = 1; k <= config.training_cells; ++k) {
        const int idx = i + side * (config.guard_cells + k);
        if (idx < 0 || idx >= n) continue;
        acc += magnitude[static_cast<std::size_t>(idx)];
        ++count;
      }
    }
    if (count == 0) continue;
    const double noise = acc / count;
    if (magnitude[static_cast<std::size_t>(i)] >
        config.threshold_factor * noise) {
      detections.push_back({static_cast<std::size_t>(i),
                            magnitude[static_cast<std::size_t>(i)], noise});
    }
  }
  return detections;
}

}  // namespace mmhand::dsp
