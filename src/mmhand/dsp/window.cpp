#include "mmhand/dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "mmhand/common/error.hpp"

namespace mmhand::dsp {

std::vector<double> make_window(WindowType type, std::size_t n) {
  MMHAND_CHECK(n >= 1, "window length " << n);
  std::vector<double> w(n, 1.0);
  if (n == 1 || type == WindowType::kRect) return w;
  const double denom = static_cast<double>(n - 1);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) +
               0.08 * std::cos(2.0 * kTwoPi * t);
        break;
      case WindowType::kRect:
        break;
    }
  }
  return w;
}

double coherent_gain(const std::vector<double>& w) {
  MMHAND_CHECK(!w.empty(), "coherent_gain of empty window");
  double s = 0.0;
  for (double v : w) s += v;
  return s / static_cast<double>(w.size());
}

}  // namespace mmhand::dsp
