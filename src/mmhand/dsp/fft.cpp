#include "mmhand/dsp/fft.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numbers>

#include "mmhand/common/error.hpp"
#include "mmhand/common/realtime.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Both twiddle caches are keyed by power-of-two FFT size, so instead
/// of a map probe under a mutex on *every* lookup (a lock the purity
/// analyzer rightly flags on the frame path), each cache is a fixed
/// array of atomic slots indexed by log2(n).  Steady state is one
/// acquire load; misses build the table under a mutex and publish with
/// a release store.  Entries are never evicted, so the returned
/// reference stays valid and FFTs run concurrently on pool threads.
constexpr std::size_t kMaxLog2 = 64;
std::atomic<const std::vector<Complex>*> g_twiddle_slots[kMaxLog2];
std::mutex g_twiddle_mu;

/// Forward twiddle factors e^{-2*pi*i*k/n} for k < n/2, cached per FFT
/// size.  The radar pipeline runs thousands of same-size FFTs per frame;
/// computing the table once replaces the per-butterfly `w *= wlen`
/// recurrence (and its accumulated rounding drift).
const std::vector<Complex>& twiddle_table(std::size_t n) {
  MMHAND_ASSERT(is_power_of_two(n));
  const unsigned idx = static_cast<unsigned>(std::countr_zero(n));
  if (const auto* t =
          g_twiddle_slots[idx].load(std::memory_order_acquire))
    return *t;
  std::lock_guard<std::mutex> lk(g_twiddle_mu);
  if (const auto* t =
          g_twiddle_slots[idx].load(std::memory_order_relaxed))
    return *t;
  auto table = std::make_unique<std::vector<Complex>>(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k)
    (*table)[k] = std::polar(
        1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
  // Released, never reclaimed: the cache owns one table per size for
  // the process lifetime, exactly as the map-of-unique_ptr did.
  const auto* published = table.release();
  g_twiddle_slots[idx].store(published, std::memory_order_release);
  return *published;
}

/// The same factors viewed as interleaved re,im doubles — the layout
/// the lane-batched FFT kernel broadcasts from.  std::complex<double>
/// is layout-compatible with double[2].
const double* twiddle_interleaved(std::size_t n) {
  return reinterpret_cast<const double*>(twiddle_table(n).data());
}

/// Per-stage twiddle tables for the SoA single-signal FFT: stage
/// len = 2, 4, ..., n contributes len/2 contiguous entries
/// w_n^{k * (n/len)}, so the vectorized butterfly loop loads twiddles
/// with unit stride.  n-1 doubles per component, cached like the main
/// table.
struct StageTwiddles {
  aligned_vector<double> re, im;
};

std::atomic<const StageTwiddles*> g_stage_slots[kMaxLog2];
std::mutex g_stage_mu;

const StageTwiddles& stage_twiddles(std::size_t n) {
  MMHAND_ASSERT(is_power_of_two(n));
  const unsigned idx = static_cast<unsigned>(std::countr_zero(n));
  if (const auto* t = g_stage_slots[idx].load(std::memory_order_acquire))
    return *t;
  std::lock_guard<std::mutex> lk(g_stage_mu);
  if (const auto* t = g_stage_slots[idx].load(std::memory_order_relaxed))
    return *t;
  auto table = std::make_unique<StageTwiddles>();
  table->re.reserve(n - 1);
  table->im.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t k = 0; k < len / 2; ++k) {
      const Complex w = std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k * stride) /
                   static_cast<double>(n));
      table->re.push_back(w.real());
      table->im.push_back(w.imag());
    }
  }
  const auto* published = table.release();
  g_stage_slots[idx].store(published, std::memory_order_release);
  return *published;
}

/// Grows-on-demand per-thread scratch for the lane-batched CZT path, so
/// the per-cell zoom transforms allocate nothing in steady state.
double* czt_scratch(std::size_t doubles) {
  thread_local aligned_vector<double> buf;
  if (buf.size() < doubles) buf.resize(doubles);
  return buf.data();
}

bool vector_isa_active() {
  return simd::active_isa() != simd::Isa::kScalar;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_pow2_inplace(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  MMHAND_CHECK(is_power_of_two(n), "fft_pow2 size " << n);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  if (n >= 2) {
    const auto& tw = twiddle_table(n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      // Stage twiddles w_len^k are the cached w_n^{k*stride}.
      const std::size_t stride = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          const Complex w =
              inverse ? std::conj(tw[k * stride]) : tw[k * stride];
          const Complex u = x[i + k];
          const Complex v = x[i + k + len / 2] * w;
          x[i + k] = u + v;
          x[i + k + len / 2] = u - v;
        }
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

MMHAND_REALTIME
void fft_lanes_pow2(double* re, double* im, std::size_t n, bool inverse) {
  MMHAND_CHECK(is_power_of_two(n), "fft_lanes size " << n);
  if (n < 2) return;
  simd::kernels().fft_lanes(re, im, n, twiddle_interleaved(n), inverse);
}

MMHAND_REALTIME
void fft_soa_pow2(double* re, double* im, std::size_t n, bool inverse) {
  MMHAND_CHECK(is_power_of_two(n), "fft_soa size " << n);
  if (n < 2) return;
  const StageTwiddles& stw = stage_twiddles(n);
  simd::kernels().fft_soa(re, im, n, stw.re.data(), stw.im.data(), inverse);
}

std::vector<Complex> czt(std::span<const Complex> x, std::size_t m, Complex w,
                         Complex a) {
  // Bluestein's algorithm: X_k = w^{k^2/2} * sum_n x_n a^{-n} w^{n^2/2}
  //                               * w^{-(k-n)^2/2}
  // i.e. a convolution evaluated with power-of-two FFTs.
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1 && m >= 1, "czt sizes n=" << n << " m=" << m);
  const std::size_t conv = next_pow2(n + m - 1);

  // Chirp factors w^{k^2/2}.  Compute via angle accumulation to avoid huge
  // integer squares losing precision: arg(w^{k^2/2}) = k^2/2 * arg(w).
  const double wang = std::arg(w);
  const double wmag = std::abs(w);
  auto chirp = [&](double k2_half) {
    return std::polar(std::pow(wmag, k2_half), wang * k2_half);
  };

  std::vector<Complex> fa(conv, Complex{});
  for (std::size_t i = 0; i < n; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    fa[i] = x[i] * std::pow(a, -static_cast<double>(i)) * chirp(i2);
  }
  std::vector<Complex> fb(conv, Complex{});
  const std::size_t lim = std::max(n, m);
  for (std::size_t i = 0; i < lim; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    const Complex v = chirp(-i2);
    if (i < m) fb[i] = v;
    if (i >= 1 && i < n) fb[conv - i] = v;
  }
  fft_pow2_inplace(fa, false);
  fft_pow2_inplace(fb, false);
  for (std::size_t i = 0; i < conv; ++i) fa[i] *= fb[i];
  fft_pow2_inplace(fa, true);

  std::vector<Complex> out(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double k2 = 0.5 * static_cast<double>(k) * static_cast<double>(k);
    out[k] = fa[k] * chirp(k2);
  }
  return out;
}

CztPlan::CztPlan(std::size_t n, std::size_t m, Complex w, Complex a)
    : n_(n), m_(m), conv_(next_pow2(n + m - 1)) {
  MMHAND_CHECK(n >= 1 && m >= 1, "czt plan sizes n=" << n << " m=" << m);
  // Identical factor formulas to `czt` above, evaluated once.  The plan
  // is built with the scalar reference FFT so its tables do not depend
  // on the active ISA.
  const double wang = std::arg(w);
  const double wmag = std::abs(w);
  auto chirp = [&](double k2_half) {
    return std::polar(std::pow(wmag, k2_half), wang * k2_half);
  };

  fa_re_.resize(n);
  fa_im_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    const Complex f = std::pow(a, -static_cast<double>(i)) * chirp(i2);
    fa_re_[i] = f.real();
    fa_im_[i] = f.imag();
  }

  std::vector<Complex> fb(conv_, Complex{});
  const std::size_t lim = std::max(n, m);
  for (std::size_t i = 0; i < lim; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    const Complex v = chirp(-i2);
    if (i < m) fb[i] = v;
    if (i >= 1 && i < n) fb[conv_ - i] = v;
  }
  fft_pow2_inplace(fb, false);
  fb_re_.resize(conv_);
  fb_im_.resize(conv_);
  for (std::size_t i = 0; i < conv_; ++i) {
    fb_re_[i] = fb[i].real();
    fb_im_[i] = fb[i].imag();
  }

  out_re_.resize(m);
  out_im_.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double k2 = 0.5 * static_cast<double>(k) * static_cast<double>(k);
    const Complex c = chirp(k2);
    out_re_[k] = c.real();
    out_im_[k] = c.imag();
  }
}

std::vector<Complex> CztPlan::run(std::span<const Complex> x) const {
  MMHAND_CHECK(x.size() == n_, "czt plan input " << x.size() << " != " << n_);
  const auto& k = simd::kernels();
  aligned_vector<double> re(conv_, 0.0), im(conv_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
  k.cmul(re.data(), im.data(), fa_re_.data(), fa_im_.data(), n_);
  fft_soa_pow2(re.data(), im.data(), conv_, false);
  k.cmul(re.data(), im.data(), fb_re_.data(), fb_im_.data(), conv_);
  fft_soa_pow2(re.data(), im.data(), conv_, true);
  k.cmul(re.data(), im.data(), out_re_.data(), out_im_.data(), m_);
  std::vector<Complex> out(m_);
  for (std::size_t i = 0; i < m_; ++i) out[i] = Complex{re[i], im[i]};
  return out;
}

MMHAND_REALTIME
void CztPlan::run_lanes(const double* re, const double* im, double* out_re,
                        double* out_im) const {
  const auto& k = simd::kernels();
  const std::size_t w = static_cast<std::size_t>(k.width);
  double* br = czt_scratch(2 * conv_ * w);
  double* bi = br + conv_ * w;
  std::copy(re, re + n_ * w, br);
  std::copy(im, im + n_ * w, bi);
  std::fill(br + n_ * w, br + conv_ * w, 0.0);
  std::fill(bi + n_ * w, bi + conv_ * w, 0.0);
  k.cmul_bcast(br, bi, fa_re_.data(), fa_im_.data(), n_);
  const double* tw = twiddle_interleaved(conv_);
  k.fft_lanes(br, bi, conv_, tw, false);
  k.cmul_bcast(br, bi, fb_re_.data(), fb_im_.data(), conv_);
  k.fft_lanes(br, bi, conv_, tw, true);
  std::copy(br, br + m_ * w, out_re);
  std::copy(bi, bi + m_ * w, out_im);
  k.cmul_bcast(out_re, out_im, out_re_.data(), out_im_.data(), m_);
}

namespace {

/// Append-only plan cache with a lock-free read path.  Keys are
/// arbitrary (size, bins, band) tuples, so there is no slot array to
/// index; instead published plans live on a singly-linked list whose
/// head is an atomic pointer.  A handful of distinct zoom geometries
/// exist per process, so the linear walk is shorter than the old
/// std::map probe — and it takes no lock.  Nodes are never removed,
/// preserving the reference-stays-valid contract.
struct PlanNode {
  std::size_t n;
  std::size_t bins;
  std::uint64_t f_lo_bits;
  std::uint64_t f_hi_bits;
  CztPlan plan;
  PlanNode* next;
};

std::atomic<PlanNode*> g_plan_head{nullptr};
std::mutex g_plan_mu;

}  // namespace

const CztPlan& zoom_plan(std::size_t n, double f_lo, double f_hi,
                         std::size_t bins) {
  const std::uint64_t lo = std::bit_cast<std::uint64_t>(f_lo);
  const std::uint64_t hi = std::bit_cast<std::uint64_t>(f_hi);
  for (const PlanNode* p = g_plan_head.load(std::memory_order_acquire);
       p != nullptr; p = p->next)
    if (p->n == n && p->bins == bins && p->f_lo_bits == lo &&
        p->f_hi_bits == hi)
      return p->plan;
  std::lock_guard<std::mutex> lk(g_plan_mu);
  // Re-scan under the lock: another thread may have published the plan
  // between the lock-free miss and acquiring the mutex.
  for (const PlanNode* p = g_plan_head.load(std::memory_order_relaxed);
       p != nullptr; p = p->next)
    if (p->n == n && p->bins == bins && p->f_lo_bits == lo &&
        p->f_hi_bits == hi)
      return p->plan;
  const double step = (f_hi - f_lo) / static_cast<double>(bins);
  const Complex a = std::polar(1.0, 2.0 * kPi * f_lo);
  const Complex w = std::polar(1.0, -2.0 * kPi * step);
  auto node = std::make_unique<PlanNode>(
      PlanNode{n, bins, lo, hi, CztPlan(n, bins, w, a),
               g_plan_head.load(std::memory_order_relaxed)});
  const PlanNode* published = node.get();
  g_plan_head.store(node.release(), std::memory_order_release);
  return published->plan;
}

std::vector<Complex> fft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1, "fft of empty signal");
  if (is_power_of_two(n)) {
    if (n >= 2 && vector_isa_active()) {
      aligned_vector<double> re(n), im(n);
      for (std::size_t i = 0; i < n; ++i) {
        re[i] = x[i].real();
        im[i] = x[i].imag();
      }
      fft_soa_pow2(re.data(), im.data(), n, false);
      std::vector<Complex> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = Complex{re[i], im[i]};
      return v;
    }
    std::vector<Complex> v(x.begin(), x.end());
    fft_pow2_inplace(v, false);
    return v;
  }
  // Bluestein: DFT == CZT with a = 1, w = exp(-2*pi*i/n).
  const Complex w = std::polar(1.0, -2.0 * kPi / static_cast<double>(n));
  return czt(x, n, w, Complex{1.0, 0.0});
}

std::vector<Complex> ifft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1, "ifft of empty signal");
  if (is_power_of_two(n)) {
    if (n >= 2 && vector_isa_active()) {
      aligned_vector<double> re(n), im(n);
      for (std::size_t i = 0; i < n; ++i) {
        re[i] = x[i].real();
        im[i] = x[i].imag();
      }
      fft_soa_pow2(re.data(), im.data(), n, true);
      std::vector<Complex> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = Complex{re[i], im[i]};
      return v;
    }
    std::vector<Complex> v(x.begin(), x.end());
    fft_pow2_inplace(v, true);
    return v;
  }
  // Conjugation trick: ifft(x) = conj(fft(conj(x))) / n.
  std::vector<Complex> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = std::conj(x[i]);
  auto y = fft(c);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& v : y) v = std::conj(v) * inv_n;
  return y;
}

std::vector<Complex> fft_real(std::span<const double> x) {
  const std::size_t n = x.size();
  if (n >= 4 && is_power_of_two(n) && vector_isa_active()) {
    // Real-input specialization: pack the even/odd samples into a
    // half-size complex signal, transform, and untangle
    //   X_k = E_k + e^{-2*pi*i*k/n} O_k
    // where E/O are the even/odd sub-spectra recovered from the packed
    // transform Z via E_k = (Z_k + conj(Z_{h-k}))/2,
    // O_k = -i (Z_k - conj(Z_{h-k}))/2.  Halves the butterfly work and
    // keeps the conjugate-symmetric upper half free.
    const std::size_t h = n / 2;
    aligned_vector<double> re(h), im(h);
    for (std::size_t i = 0; i < h; ++i) {
      re[i] = x[2 * i];
      im[i] = x[2 * i + 1];
    }
    fft_soa_pow2(re.data(), im.data(), h, false);
    const auto& tw = twiddle_table(n);  // e^{-2*pi*i*k/n}, k < n/2
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k <= h / 2; ++k) {
      const std::size_t kc = (h - k) % h;
      const Complex z1{re[k], im[k]};
      const Complex z2{re[kc], -im[kc]};
      const Complex e = 0.5 * (z1 + z2);
      const Complex o = Complex{0.0, -0.5} * (z1 - z2);
      out[k] = e + tw[k] * o;
      if (k >= 1 && k < h - k) {
        // Mirror within the lower half: X_{h-k} = E_k' + tw O_k' with
        // E' = conj-mirror; computed directly from the same z pair.
        const Complex e2 = std::conj(e);
        const Complex o2 = std::conj(o);
        out[h - k] = e2 + tw[h - k] * o2;
      }
    }
    out[h] = Complex{re[0] - im[0], 0.0};
    for (std::size_t k = 1; k < h; ++k) out[n - k] = std::conj(out[k]);
    return out;
  }
  std::vector<Complex> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = Complex{x[i], 0.0};
  return fft(c);
}

std::vector<Complex> fft_shift(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  const std::size_t half = (n + 1) / 2;  // index of first "negative" bin
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

std::vector<Complex> zoom_fft(std::span<const Complex> x, double f_lo,
                              double f_hi, std::size_t bins) {
  MMHAND_CHECK(bins >= 1, "zoom_fft needs bins >= 1");
  MMHAND_CHECK(f_hi > f_lo, "zoom_fft band [" << f_lo << ", " << f_hi << ")");
  if (vector_isa_active())
    return zoom_plan(x.size(), f_lo, f_hi, bins).run(x);
  const double step = (f_hi - f_lo) / static_cast<double>(bins);
  // X_k = sum_n x_n e^{-2*pi*i*(f_lo + k*step)*n}  ==  CZT with
  // A = e^{+2*pi*i*f_lo} (so A^{-n} gives the f_lo shift) and
  // W = e^{-2*pi*i*step} (so W^{nk} sweeps the band).
  const Complex a = std::polar(1.0, 2.0 * kPi * f_lo);
  const Complex w = std::polar(1.0, -2.0 * kPi * step);
  return czt(x, bins, w, a);
}

}  // namespace mmhand::dsp
