#include "mmhand/dsp/fft.hpp"

#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <unordered_map>

#include "mmhand/common/error.hpp"

namespace mmhand::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Forward twiddle factors e^{-2*pi*i*k/n} for k < n/2, cached per FFT
/// size.  The radar pipeline runs thousands of same-size FFTs per frame;
/// computing the table once replaces the per-butterfly `w *= wlen`
/// recurrence (and its accumulated rounding drift).  Entries are built
/// under a lock and never evicted, so the returned reference stays valid
/// and FFTs can run concurrently on pool threads.
const std::vector<Complex>& twiddle_table(std::size_t n) {
  static std::mutex mu;
  static std::unordered_map<std::size_t,
                            std::unique_ptr<std::vector<Complex>>>
      cache;
  std::lock_guard<std::mutex> lk(mu);
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<std::vector<Complex>>(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k)
      (*slot)[k] = std::polar(
          1.0, -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
  }
  return *slot;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_pow2_inplace(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  MMHAND_CHECK(is_power_of_two(n), "fft_pow2 size " << n);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  if (n >= 2) {
    const auto& tw = twiddle_table(n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      // Stage twiddles w_len^k are the cached w_n^{k*stride}.
      const std::size_t stride = n / len;
      for (std::size_t i = 0; i < n; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          const Complex w =
              inverse ? std::conj(tw[k * stride]) : tw[k * stride];
          const Complex u = x[i + k];
          const Complex v = x[i + k + len / 2] * w;
          x[i + k] = u + v;
          x[i + k + len / 2] = u - v;
        }
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

std::vector<Complex> czt(std::span<const Complex> x, std::size_t m, Complex w,
                         Complex a) {
  // Bluestein's algorithm: X_k = w^{k^2/2} * sum_n x_n a^{-n} w^{n^2/2}
  //                               * w^{-(k-n)^2/2}
  // i.e. a convolution evaluated with power-of-two FFTs.
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1 && m >= 1, "czt sizes n=" << n << " m=" << m);
  const std::size_t conv = next_pow2(n + m - 1);

  // Chirp factors w^{k^2/2}.  Compute via angle accumulation to avoid huge
  // integer squares losing precision: arg(w^{k^2/2}) = k^2/2 * arg(w).
  const double wang = std::arg(w);
  const double wmag = std::abs(w);
  auto chirp = [&](double k2_half) {
    return std::polar(std::pow(wmag, k2_half), wang * k2_half);
  };

  std::vector<Complex> fa(conv, Complex{});
  for (std::size_t i = 0; i < n; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    fa[i] = x[i] * std::pow(a, -static_cast<double>(i)) * chirp(i2);
  }
  std::vector<Complex> fb(conv, Complex{});
  const std::size_t lim = std::max(n, m);
  for (std::size_t i = 0; i < lim; ++i) {
    const double i2 = 0.5 * static_cast<double>(i) * static_cast<double>(i);
    const Complex v = chirp(-i2);
    if (i < m) fb[i] = v;
    if (i >= 1 && i < n) fb[conv - i] = v;
  }
  fft_pow2_inplace(fa, false);
  fft_pow2_inplace(fb, false);
  for (std::size_t i = 0; i < conv; ++i) fa[i] *= fb[i];
  fft_pow2_inplace(fa, true);

  std::vector<Complex> out(m);
  for (std::size_t k = 0; k < m; ++k) {
    const double k2 = 0.5 * static_cast<double>(k) * static_cast<double>(k);
    out[k] = fa[k] * chirp(k2);
  }
  return out;
}

std::vector<Complex> fft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1, "fft of empty signal");
  if (is_power_of_two(n)) {
    std::vector<Complex> v(x.begin(), x.end());
    fft_pow2_inplace(v, false);
    return v;
  }
  // Bluestein: DFT == CZT with a = 1, w = exp(-2*pi*i/n).
  const Complex w = std::polar(1.0, -2.0 * kPi / static_cast<double>(n));
  return czt(x, n, w, Complex{1.0, 0.0});
}

std::vector<Complex> ifft(std::span<const Complex> x) {
  const std::size_t n = x.size();
  MMHAND_CHECK(n >= 1, "ifft of empty signal");
  if (is_power_of_two(n)) {
    std::vector<Complex> v(x.begin(), x.end());
    fft_pow2_inplace(v, true);
    return v;
  }
  // Conjugation trick: ifft(x) = conj(fft(conj(x))) / n.
  std::vector<Complex> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = std::conj(x[i]);
  auto y = fft(c);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (auto& v : y) v = std::conj(v) * inv_n;
  return y;
}

std::vector<Complex> fft_real(std::span<const double> x) {
  std::vector<Complex> c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) c[i] = Complex{x[i], 0.0};
  return fft(c);
}

std::vector<Complex> fft_shift(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  const std::size_t half = (n + 1) / 2;  // index of first "negative" bin
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

std::vector<Complex> zoom_fft(std::span<const Complex> x, double f_lo,
                              double f_hi, std::size_t bins) {
  MMHAND_CHECK(bins >= 1, "zoom_fft needs bins >= 1");
  MMHAND_CHECK(f_hi > f_lo, "zoom_fft band [" << f_lo << ", " << f_hi << ")");
  const double step = (f_hi - f_lo) / static_cast<double>(bins);
  // X_k = sum_n x_n e^{-2*pi*i*(f_lo + k*step)*n}  ==  CZT with
  // A = e^{+2*pi*i*f_lo} (so A^{-n} gives the f_lo shift) and
  // W = e^{-2*pi*i*step} (so W^{nk} sweeps the band).
  const Complex a = std::polar(1.0, 2.0 * kPi * f_lo);
  const Complex w = std::polar(1.0, -2.0 * kPi * step);
  return czt(x, bins, w, a);
}

}  // namespace mmhand::dsp
