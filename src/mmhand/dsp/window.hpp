#pragma once

// Window functions applied before the range/Doppler/angle FFTs to control
// spectral leakage from strong nearby reflectors (the user's body).

#include <vector>

namespace mmhand::dsp {

enum class WindowType {
  kRect,
  kHann,
  kHamming,
  kBlackman,
};

/// Window of length n (symmetric form).
std::vector<double> make_window(WindowType type, std::size_t n);

/// Coherent gain of a window: mean of its samples.  Dividing a windowed
/// spectrum by this restores amplitude calibration.
double coherent_gain(const std::vector<double>& w);

}  // namespace mmhand::dsp
