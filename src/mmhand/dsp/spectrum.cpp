#include "mmhand/dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/aligned.hpp"
#include "mmhand/common/error.hpp"
#include "mmhand/simd/simd.hpp"

namespace mmhand::dsp {

std::vector<double> magnitude(std::span<const std::complex<double>> x) {
  std::vector<double> m(x.size());
  if (simd::active_isa() != simd::Isa::kScalar && x.size() >= 8) {
    // Split to SoA once, then one vector sqrt per lane-width of
    // elements.  sqrt(re^2+im^2) forgoes std::abs's overflow rescaling,
    // which is irrelevant at radar signal magnitudes (DESIGN §9).
    const std::size_t n = x.size();
    aligned_vector<double> re(n), im(n);
    for (std::size_t i = 0; i < n; ++i) {
      re[i] = x[i].real();
      im[i] = x[i].imag();
    }
    simd::kernels().vmag(re.data(), im.data(), m.data(), n);
    return m;
  }
  for (std::size_t i = 0; i < x.size(); ++i) m[i] = std::abs(x[i]);
  return m;
}

std::vector<double> magnitude_db(std::span<const std::complex<double>> x,
                                 double eps) {
  std::vector<double> m(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    m[i] = 20.0 * std::log10(std::abs(x[i]) + eps);
  return m;
}

std::vector<Peak> find_peaks(std::span<const double> mag, double min_value,
                             std::size_t max_peaks) {
  std::vector<Peak> peaks;
  const std::size_t n = mag.size();
  for (std::size_t i = 0; i < n; ++i) {
    const bool left_ok = (i == 0) || mag[i] > mag[i - 1];
    const bool right_ok = (i + 1 == n) || mag[i] > mag[i + 1];
    if (left_ok && right_ok && mag[i] >= min_value)
      peaks.push_back({i, mag[i]});
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.value > b.value; });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

std::size_t argmax(std::span<const double> mag) {
  MMHAND_CHECK(!mag.empty(), "argmax of empty span");
  return static_cast<std::size_t>(
      std::max_element(mag.begin(), mag.end()) - mag.begin());
}

}  // namespace mmhand::dsp
