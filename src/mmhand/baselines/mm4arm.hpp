#pragma once

// mm4Arm-style baseline (Table I): a mmWave system that tracks finger
// motion through the forearm.  Its published MPJPE (4.07 mm) comes from a
// restricted protocol — the forearm must always face the radar, gestures
// are drawn from a constrained set, and only pseudo-3D skeletons are
// produced.  We reproduce that regime: radar cubes captured under a
// locked-down scenario (tiny wrist drift/wobble, narrow gesture
// vocabulary, no clutter) feed a plain MLP regressor.  A second entry
// point evaluates the same trained model when the arm rotates, showing the
// failure mode §I calls out.

#include "mmhand/nn/sequential.hpp"
#include "mmhand/sim/dataset.hpp"

namespace mmhand::baselines {

struct Mm4ArmConfig {
  int train_seconds = 20;
  int test_seconds = 8;
  int epochs = 15;
  double lr = 1e-3;
  std::uint64_t seed = 41;
};

class Mm4ArmBaseline {
 public:
  Mm4ArmBaseline(const Mm4ArmConfig& config,
                 const radar::ChirpConfig& chirp,
                 const radar::PipelineConfig& pipeline);

  /// Trains on the restricted protocol.
  void train();

  /// MPJPE (mm) on a fresh restricted-protocol recording — the setting the
  /// paper's 4.07 mm figure corresponds to.
  double evaluate_restricted_mpjpe_mm();

  /// MPJPE (mm) when the arm/wrist rotates freely — the regime where
  /// mm4Arm degrades and mmHand keeps working.
  double evaluate_rotated_mpjpe_mm();

 private:
  sim::ScenarioConfig restricted_scenario(double duration,
                                          std::uint64_t seed) const;
  nn::Tensor cube_features(const radar::RadarCube& cube) const;
  double evaluate(const sim::Recording& recording);

  Mm4ArmConfig config_;
  sim::DatasetBuilder builder_;
  int feature_dim_ = 0;
  nn::Sequential net_;
  bool trained_ = false;
};

}  // namespace mmhand::baselines
