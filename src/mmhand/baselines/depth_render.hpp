#pragma once

// Synthetic depth camera — the substrate for the vision baselines in
// Table I (Cascade, DeepPrior++-style).  Renders a z-buffer of the posed
// hand by splatting spheres along each bone, imitating the depth maps the
// MSRA / ICVL datasets provide.

#include "mmhand/hand/skeleton.hpp"
#include "mmhand/nn/tensor.hpp"

namespace mmhand::baselines {

struct DepthCameraConfig {
  int width = 32;
  int height = 32;
  /// View volume (meters) around the hand, camera looking along +y.
  double x_min = -0.15, x_max = 0.15;
  double z_min = -0.10, z_max = 0.20;
  /// Normalization: depth d -> (d - y_near) / y_scale; background value.
  double y_near = 0.15;
  double y_scale = 0.30;
  float background = 1.5f;
  /// Sphere radius splatted along bones (meters).
  double bone_radius = 0.009;
  int spheres_per_bone = 4;
};

/// Renders a [1, H, W] normalized depth image of the skeleton.
nn::Tensor render_depth(const hand::JointSet& joints,
                        const DepthCameraConfig& config = {});

/// Pixel coordinates of a 3-D point under the camera (may be outside the
/// image; callers clamp).
void project_to_pixel(const Vec3& p, const DepthCameraConfig& config,
                      int& px, int& py);

}  // namespace mmhand::baselines
