#pragma once

// Synthetic stand-ins for the vision baselines' benchmark datasets.
// Table I quotes MSRA and ICVL numbers; with neither dataset available
// offline we emulate their character (DESIGN.md §2): the MSRA-like variant
// covers the full gesture vocabulary with stronger depth/label noise, the
// ICVL-like variant uses a narrower gesture set and cleaner frames — which
// is why published ICVL errors run lower than MSRA ones.

#include <vector>

#include "mmhand/baselines/depth_render.hpp"
#include "mmhand/common/rng.hpp"
#include "mmhand/hand/gesture.hpp"

namespace mmhand::baselines {

struct DepthSample {
  nn::Tensor depth;       ///< [1, H, W]
  nn::Tensor label;       ///< [1, 63] joints (meters)
  hand::JointSet joints;  ///< same joints, structured
};

enum class VisionDataset { kMsraLike, kIcvlLike };

struct DepthDatasetConfig {
  VisionDataset variant = VisionDataset::kMsraLike;
  int samples = 400;
  std::uint64_t seed = 5;
  DepthCameraConfig camera;
};

std::vector<DepthSample> make_depth_dataset(const DepthDatasetConfig& config);

}  // namespace mmhand::baselines
