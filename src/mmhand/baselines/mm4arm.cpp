#include "mmhand/baselines/mm4arm.hpp"

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/optimizer.hpp"

namespace mmhand::baselines {

namespace {

nn::Tensor joints_row(const hand::JointSet& joints) {
  nn::Tensor row({1, 63});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    row.at(0, 3 * j) =
        static_cast<float>(joints[static_cast<std::size_t>(j)].x);
    row.at(0, 3 * j + 1) =
        static_cast<float>(joints[static_cast<std::size_t>(j)].y);
    row.at(0, 3 * j + 2) =
        static_cast<float>(joints[static_cast<std::size_t>(j)].z);
  }
  return row;
}

}  // namespace

Mm4ArmBaseline::Mm4ArmBaseline(const Mm4ArmConfig& config,
                               const radar::ChirpConfig& chirp,
                               const radar::PipelineConfig& pipeline)
    // The restricted protocol also enjoys cleaner ground truth (tight,
    // sensor-grade labels), part of why the published error is millimetric.
    : config_(config),
      builder_(chirp, pipeline, sim::HandSceneConfig{},
               sim::LabelNoiseConfig{0.001}) {
  const auto& cube = pipeline.cube;
  feature_dim_ = (chirp.chirps_per_frame / 2) * cube.range_bins *
                 cube.total_angle_bins();
  Rng rng(config_.seed);
  net_.emplace<nn::Linear>(feature_dim_, 192, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Linear>(192, 63, rng);
}

sim::ScenarioConfig Mm4ArmBaseline::restricted_scenario(
    double duration, std::uint64_t seed) const {
  sim::ScenarioConfig s;
  s.duration_s = duration;
  s.seed = seed;
  // The restricted protocol: forearm locked facing the radar, a narrow
  // gesture inventory, clean surroundings.
  s.vocabulary = {hand::Gesture::kPoint, hand::Gesture::kCount2,
                  hand::Gesture::kCount3, hand::Gesture::kFist};
  s.wrist_drift_m = 0.003;
  s.orientation_wobble_rad = 0.02;
  s.clutter.environment = sim::Environment::kPlayground;
  s.clutter.body = sim::BodyPosition::kNone;
  return s;
}

nn::Tensor Mm4ArmBaseline::cube_features(const radar::RadarCube& cube)
    const {
  // Velocity-pooled flattening: the restricted protocol keeps the forearm
  // static, so fine Doppler structure matters less than the range-angle
  // detail; pooling only the velocity axis keeps spatial resolution.
  const int v2 = cube.velocity_bins() / 2;
  nn::Tensor f({1, v2 * cube.range_bins() * cube.angle_bins()});
  int idx = 0;
  for (int v = 0; v < v2; ++v)
    for (int d = 0; d < cube.range_bins(); ++d)
      for (int a = 0; a < cube.angle_bins(); ++a) {
        const float acc = cube.at(2 * v, d, a) + cube.at(2 * v + 1, d, a);
        f.at(0, idx++) = acc / 2.0f * 0.25f - 0.75f;
      }
  return f;
}

void Mm4ArmBaseline::train() {
  const auto recording =
      builder_.record(restricted_scenario(config_.train_seconds, 0xA1));
  nn::Adam opt(net_.parameters(), {.lr = config_.lr});
  Rng rng(config_.seed ^ 0x77);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr_scale = nn::cosine_decay(epoch, config_.epochs);
    const auto order =
        rng.permutation(static_cast<int>(recording.frames.size()));
    int since = 0;
    opt.zero_grad();
    for (int idx : order) {
      const auto& frame = recording.frames[static_cast<std::size_t>(idx)];
      const nn::Tensor f = cube_features(frame.cube);
      const nn::Tensor pred = net_.forward(f, true);
      const auto loss = nn::mse_loss(pred, joints_row(frame.joints));
      (void)net_.backward(loss.grad);
      if (++since >= 8) {
        opt.step(lr_scale);
        opt.zero_grad();
        since = 0;
      }
    }
    if (since > 0) {
      opt.step(lr_scale);
      opt.zero_grad();
    }
  }
  trained_ = true;
}

double Mm4ArmBaseline::evaluate(const sim::Recording& recording) {
  MMHAND_CHECK(trained_, "mm4arm not trained");
  double total = 0.0;
  std::size_t joints_count = 0;
  for (const auto& frame : recording.frames) {
    const nn::Tensor pred = net_.forward(cube_features(frame.cube), false);
    for (int j = 0; j < hand::kNumJoints; ++j) {
      const Vec3 p{pred.at(0, 3 * j), pred.at(0, 3 * j + 1),
                   pred.at(0, 3 * j + 2)};
      total += 1000.0 *
               distance(p, frame.true_joints[static_cast<std::size_t>(j)]);
      ++joints_count;
    }
  }
  return total / static_cast<double>(joints_count);
}

double Mm4ArmBaseline::evaluate_restricted_mpjpe_mm() {
  return evaluate(
      builder_.record(restricted_scenario(config_.test_seconds, 0xB2)));
}

double Mm4ArmBaseline::evaluate_rotated_mpjpe_mm() {
  sim::ScenarioConfig s = restricted_scenario(config_.test_seconds, 0xC3);
  // The arm rotates freely: large orientation wobble breaks the locked
  // forearm assumption.
  s.orientation_wobble_rad = 0.5;
  s.wrist_drift_m = 0.02;
  return evaluate(builder_.record(s));
}

}  // namespace mmhand::baselines
