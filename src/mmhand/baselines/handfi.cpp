#include "mmhand/baselines/handfi.hpp"

#include <cmath>
#include <numbers>

#include "mmhand/hand/kinematics.hpp"
#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/optimizer.hpp"
#include "mmhand/sim/scene.hpp"

namespace mmhand::baselines {

namespace {

constexpr double kC = 299792458.0;

}  // namespace

std::vector<std::complex<double>> simulate_csi(const radar::Scene& scene,
                                               const WifiConfig& config,
                                               Rng& rng) {
  std::vector<std::complex<double>> csi(
      static_cast<std::size_t>(config.rx_antennas) * config.subcarriers);
  for (int a = 0; a < config.rx_antennas; ++a) {
    const Vec3 rx{static_cast<double>(a) * config.antenna_spacing_m, 0.0,
                  0.0};
    for (int k = 0; k < config.subcarriers; ++k) {
      const double f = config.carrier_hz +
                       (k - config.subcarriers / 2) *
                           config.subcarrier_spacing_hz;
      std::complex<double> h{0.0, 0.0};
      // Static line-of-sight component.
      const double d_los = distance(config.tx_position, rx);
      h += std::polar(1.0, -2.0 * std::numbers::pi * f * d_los / kC);
      // Hand multipath.
      for (const auto& s : scene) {
        const double d = distance(config.tx_position, s.position) +
                         distance(s.position, rx);
        h += std::polar(0.8 * s.observed_amplitude(),
                        -2.0 * std::numbers::pi * f * d / kC);
      }
      h += std::complex<double>{rng.normal(0.0, config.noise_stddev),
                                rng.normal(0.0, config.noise_stddev)};
      csi[static_cast<std::size_t>(a) * config.subcarriers + k] = h;
    }
  }
  return csi;
}

HandFiBaseline::HandFiBaseline(const HandFiConfig& config)
    : config_(config) {
  Rng rng(config_.seed);
  net_.emplace<nn::Linear>(feature_dim(), 128, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Linear>(128, 128, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Linear>(128, 63, rng);
}

nn::Tensor HandFiBaseline::csi_features(
    const std::vector<std::complex<double>>& csi) const {
  const int n_ant = config_.wifi.rx_antennas;
  const int n_sub = config_.wifi.subcarriers;
  nn::Tensor f({1, feature_dim()});
  int idx = 0;
  for (int a = 0; a < n_ant; ++a)
    for (int k = 0; k < n_sub; ++k) {
      const auto& h = csi[static_cast<std::size_t>(a) * n_sub + k];
      // Conjugate multiplication against antenna 0 cancels the unknown
      // CFO (the standard CSI sanitization trick); feeding the real and
      // imaginary parts avoids the phase-wrapping discontinuity that raw
      // angles would introduce.
      const auto& ref = csi[static_cast<std::size_t>(k)];
      const auto sanitized = h * std::conj(ref);
      f.at(0, idx++) = static_cast<float>(sanitized.real());
      f.at(0, idx++) = static_cast<float>(sanitized.imag());
    }
  return f;
}

namespace {

struct WifiFrame {
  nn::Tensor features;
  hand::JointSet joints;
  nn::Tensor label;
};

std::vector<WifiFrame> make_frames(const HandFiConfig& config, int count,
                                   std::uint64_t seed,
                                   const HandFiBaseline* owner,
                                   nn::Tensor (HandFiBaseline::*feat)(
                                       const std::vector<std::complex<
                                           double>>&) const) {
  Rng rng(seed);
  hand::GestureScriptConfig script_cfg;
  // HandFi's setup: the hand sits between TX and RX with the body away
  // from the link; the hand alone dominates the multipath.
  hand::GestureScript script(script_cfg, rng.fork(), count * 0.05);
  sim::HandSceneConfig scene_cfg;
  Rng scene_rng = rng.fork();
  Rng csi_rng = rng.fork();
  Rng label_rng = rng.fork();

  std::vector<WifiFrame> frames;
  frames.reserve(static_cast<std::size_t>(count));
  const auto profile = hand::HandProfile::for_user(0);
  for (int i = 0; i < count; ++i) {
    const double t = i * 0.05;
    const auto joints =
        hand::forward_kinematics(profile, script.pose_at(t));
    const auto scene =
        sim::build_hand_scene(joints, joints, 0.05, scene_cfg, scene_rng);
    const auto csi = simulate_csi(scene, config.wifi, csi_rng);
    WifiFrame frame;
    frame.features = (owner->*feat)(csi);
    frame.joints = joints;
    frame.label = nn::Tensor({1, 63});
    for (int j = 0; j < hand::kNumJoints; ++j) {
      const Vec3 p = joints[static_cast<std::size_t>(j)] +
                     Vec3{label_rng.normal(0.0, 0.0025),
                          label_rng.normal(0.0, 0.0025),
                          label_rng.normal(0.0, 0.0025)};
      frame.label.at(0, 3 * j) = static_cast<float>(p.x);
      frame.label.at(0, 3 * j + 1) = static_cast<float>(p.y);
      frame.label.at(0, 3 * j + 2) = static_cast<float>(p.z);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace

void HandFiBaseline::train() {
  const auto frames = make_frames(config_, config_.train_frames,
                                  config_.seed ^ 0xAA, this,
                                  &HandFiBaseline::csi_features);
  nn::Adam opt(net_.parameters(), {.lr = config_.lr});
  Rng rng(config_.seed ^ 0x1234);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr_scale = nn::cosine_decay(epoch, config_.epochs);
    const auto order = rng.permutation(static_cast<int>(frames.size()));
    int since = 0;
    opt.zero_grad();
    for (int idx : order) {
      const auto& frame = frames[static_cast<std::size_t>(idx)];
      const nn::Tensor pred = net_.forward(frame.features, true);
      const auto loss = nn::mse_loss(pred, frame.label);
      (void)net_.backward(loss.grad);
      if (++since >= 8) {
        opt.step(lr_scale);
        opt.zero_grad();
        since = 0;
      }
    }
    if (since > 0) {
      opt.step(lr_scale);
      opt.zero_grad();
    }
  }
  trained_ = true;
}

double HandFiBaseline::evaluate_mpjpe_mm() {
  MMHAND_CHECK(trained_, "handfi not trained");
  const auto frames = make_frames(config_, config_.test_frames,
                                  config_.seed ^ 0xBB, this,
                                  &HandFiBaseline::csi_features);
  double total = 0.0;
  std::size_t joints_count = 0;
  for (const auto& frame : frames) {
    const nn::Tensor pred = net_.forward(frame.features, false);
    for (int j = 0; j < hand::kNumJoints; ++j) {
      const Vec3 p{pred.at(0, 3 * j), pred.at(0, 3 * j + 1),
                   pred.at(0, 3 * j + 2)};
      total += 1000.0 *
               distance(p, frame.joints[static_cast<std::size_t>(j)]);
      ++joints_count;
    }
  }
  return total / static_cast<double>(joints_count);
}

}  // namespace mmhand::baselines
