#include "mmhand/baselines/deepprior.hpp"

#include <cmath>

#include "mmhand/nn/activations.hpp"
#include "mmhand/nn/conv2d.hpp"
#include "mmhand/nn/linear.hpp"
#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/optimizer.hpp"

namespace mmhand::baselines {

PosePrior fit_pose_prior(const std::vector<DepthSample>& dataset,
                         int components) {
  MMHAND_CHECK(dataset.size() >= 4, "pose prior needs data");
  MMHAND_CHECK(components >= 1 && components <= 63, "pca components");
  const int n = static_cast<int>(dataset.size());

  PosePrior prior;
  prior.mean = nn::Tensor::zeros({63});
  for (const auto& s : dataset)
    for (int c = 0; c < 63; ++c)
      prior.mean[static_cast<std::size_t>(c)] += s.label.at(0, c);
  prior.mean.scale_(1.0f / static_cast<float>(n));

  // Covariance of the centered labels.
  std::vector<double> cov(63 * 63, 0.0);
  for (const auto& s : dataset) {
    double centered[63];
    for (int c = 0; c < 63; ++c)
      centered[c] = s.label.at(0, c) - prior.mean[static_cast<std::size_t>(c)];
    for (int a = 0; a < 63; ++a)
      for (int b = 0; b < 63; ++b)
        cov[static_cast<std::size_t>(a) * 63 + b] +=
            centered[a] * centered[b];
  }
  for (auto& v : cov) v /= n;

  // Power iteration with deflation.
  prior.components = nn::Tensor({components, 63});
  Rng rng(97);
  for (int k = 0; k < components; ++k) {
    std::vector<double> v(63);
    for (auto& x : v) x = rng.normal();
    double eigenvalue = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<double> w(63, 0.0);
      for (int a = 0; a < 63; ++a)
        for (int b = 0; b < 63; ++b)
          w[static_cast<std::size_t>(a)] +=
              cov[static_cast<std::size_t>(a) * 63 + b] *
              v[static_cast<std::size_t>(b)];
      double norm = 0.0;
      for (double x : w) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;
      eigenvalue = norm;
      for (int a = 0; a < 63; ++a)
        v[static_cast<std::size_t>(a)] = w[static_cast<std::size_t>(a)] / norm;
    }
    for (int c = 0; c < 63; ++c)
      prior.components.at(k, c) =
          static_cast<float>(v[static_cast<std::size_t>(c)]);
    // Deflate: cov -= lambda v v^T.
    for (int a = 0; a < 63; ++a)
      for (int b = 0; b < 63; ++b)
        cov[static_cast<std::size_t>(a) * 63 + b] -=
            eigenvalue * v[static_cast<std::size_t>(a)] *
            v[static_cast<std::size_t>(b)];
  }
  return prior;
}

DeepPriorRegressor::DeepPriorRegressor(const DeepPriorConfig& config,
                                       const DepthCameraConfig& camera)
    : config_(config), camera_(camera) {}

nn::Tensor DeepPriorRegressor::decode(const nn::Tensor& coeffs) const {
  nn::Tensor out({1, 63});
  for (int c = 0; c < 63; ++c)
    out.at(0, c) = prior_.mean[static_cast<std::size_t>(c)];
  for (int k = 0; k < prior_.components.dim(0); ++k) {
    const float a = coeffs.at(0, k);
    for (int c = 0; c < 63; ++c)
      out.at(0, c) += a * prior_.components.at(k, c);
  }
  return out;
}

nn::Tensor DeepPriorRegressor::encode(const nn::Tensor& label63) const {
  nn::Tensor coeffs({1, prior_.components.dim(0)});
  for (int k = 0; k < prior_.components.dim(0); ++k) {
    float acc = 0.0f;
    for (int c = 0; c < 63; ++c)
      acc += (label63.at(0, c) - prior_.mean[static_cast<std::size_t>(c)]) *
             prior_.components.at(k, c);
    coeffs.at(0, k) = acc;
  }
  return coeffs;
}

void DeepPriorRegressor::train(const std::vector<DepthSample>& dataset) {
  MMHAND_CHECK(!dataset.empty(), "deepprior needs training data");
  prior_ = fit_pose_prior(dataset, config_.pca_components);

  Rng rng(config_.seed);
  // Small CNN: two strided convs then FC into the prior space.
  net_ = nn::Sequential();
  net_.emplace<nn::Conv2d>(1, 8, 3, 2, 1, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Conv2d>(8, 16, 3, 2, 1, rng);
  net_.emplace<nn::ReLU>();
  const int spatial = camera_.width / 4 * (camera_.height / 4);
  // Flattening happens via reshape around the Sequential boundary, so the
  // trailing layers operate on [1, F].
  nn::Adam opt(net_.parameters(), {.lr = config_.lr});
  nn::Sequential head;
  head.emplace<nn::Linear>(16 * spatial, 96, rng);
  head.emplace<nn::ReLU>();
  head.emplace<nn::Linear>(96, config_.pca_components, rng);
  nn::Adam head_opt(head.parameters(), {.lr = config_.lr});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr_scale = nn::cosine_decay(epoch, config_.epochs);
    const auto order = rng.permutation(static_cast<int>(dataset.size()));
    int since_step = 0;
    opt.zero_grad();
    head_opt.zero_grad();
    for (int idx : order) {
      const auto& sample = dataset[static_cast<std::size_t>(idx)];
      nn::Tensor img = sample.depth.reshaped(
          {1, 1, camera_.height, camera_.width});
      for (std::size_t e = 0; e < img.numel(); ++e)
        img[e] = camera_.background - img[e];
      nn::Tensor feat = net_.forward(img, true);
      const auto feat_shape = feat.shape();
      nn::Tensor flat = feat.reshaped({1, 16 * spatial});
      nn::Tensor coeffs = head.forward(flat, true);
      const nn::Tensor target = encode(sample.label);
      const auto loss = nn::mse_loss(coeffs, target);
      nn::Tensor g = head.backward(loss.grad);
      (void)net_.backward(g.reshaped(feat_shape));
      if (++since_step >= config_.batch_size) {
        opt.step(lr_scale);
        head_opt.step(lr_scale);
        opt.zero_grad();
        head_opt.zero_grad();
        since_step = 0;
      }
    }
    if (since_step > 0) {
      opt.step(lr_scale);
      head_opt.step(lr_scale);
      opt.zero_grad();
      head_opt.zero_grad();
    }
  }
  // Fold the head into the stored network for inference.
  head_ = std::move(head);
  trained_ = true;
}

hand::JointSet DeepPriorRegressor::predict(const nn::Tensor& depth) {
  MMHAND_CHECK(trained_, "deepprior not trained");
  nn::Tensor img = depth.reshaped({1, 1, camera_.height, camera_.width});
  for (std::size_t e = 0; e < img.numel(); ++e)
    img[e] = camera_.background - img[e];
  nn::Tensor feat = net_.forward(img, false);
  const int spatial = camera_.width / 4 * (camera_.height / 4);
  nn::Tensor coeffs =
      head_.forward(feat.reshaped({1, 16 * spatial}), false);
  const nn::Tensor joints = decode(coeffs);
  hand::JointSet out;
  for (int j = 0; j < hand::kNumJoints; ++j)
    out[static_cast<std::size_t>(j)] =
        Vec3{joints.at(0, 3 * j), joints.at(0, 3 * j + 1),
             joints.at(0, 3 * j + 2)};
  return out;
}

double DeepPriorRegressor::evaluate_mpjpe_mm(
    const std::vector<DepthSample>& test) {
  MMHAND_CHECK(!test.empty(), "deepprior evaluation set empty");
  double total = 0.0;
  for (const auto& sample : test) {
    const auto pred = predict(sample.depth);
    for (int j = 0; j < hand::kNumJoints; ++j)
      total += 1000.0 * distance(pred[static_cast<std::size_t>(j)],
                                 sample.joints[static_cast<std::size_t>(j)]);
  }
  return total / (static_cast<double>(test.size()) * hand::kNumJoints);
}

}  // namespace mmhand::baselines
