#include "mmhand/baselines/depth_render.hpp"

#include <algorithm>
#include <cmath>

#include "mmhand/common/error.hpp"

namespace mmhand::baselines {

void project_to_pixel(const Vec3& p, const DepthCameraConfig& config,
                      int& px, int& py) {
  const double u = (p.x - config.x_min) / (config.x_max - config.x_min);
  const double v = (p.z - config.z_min) / (config.z_max - config.z_min);
  px = static_cast<int>(u * (config.width - 1) + 0.5);
  // Image rows grow downward while z grows upward.
  py = static_cast<int>((1.0 - v) * (config.height - 1) + 0.5);
}

nn::Tensor render_depth(const hand::JointSet& joints,
                        const DepthCameraConfig& config) {
  MMHAND_CHECK(config.width >= 8 && config.height >= 8, "depth image size");
  nn::Tensor img = nn::Tensor::full({1, config.height, config.width},
                                    config.background);

  const double px_radius_x = config.bone_radius /
                             (config.x_max - config.x_min) * config.width;
  const double px_radius_y = config.bone_radius /
                             (config.z_max - config.z_min) * config.height;
  const int rx = std::max(1, static_cast<int>(px_radius_x));
  const int ry = std::max(1, static_cast<int>(px_radius_y));

  auto splat = [&](const Vec3& center) {
    int cx, cy;
    project_to_pixel(center, config, cx, cy);
    const float depth = static_cast<float>(
        (center.y - config.y_near) / config.y_scale);
    for (int dy = -ry; dy <= ry; ++dy)
      for (int dx = -rx; dx <= rx; ++dx) {
        const int x = cx + dx, y = cy + dy;
        if (x < 0 || x >= config.width || y < 0 || y >= config.height)
          continue;
        const double r2 = static_cast<double>(dx) * dx /
                              (px_radius_x * px_radius_x) +
                          static_cast<double>(dy) * dy /
                              (px_radius_y * px_radius_y);
        if (r2 > 1.0) continue;
        float& cell = img.at(0, y, x);
        cell = std::min(cell, depth);
      }
  };

  // Spheres along every bone plus the palm fan.
  for (int child = 1; child < hand::kNumJoints; ++child) {
    const int parent = hand::joint_parent(child);
    const Vec3 a = joints[static_cast<std::size_t>(parent)];
    const Vec3 b = joints[static_cast<std::size_t>(child)];
    for (int k = 0; k <= config.spheres_per_bone; ++k) {
      const double t = static_cast<double>(k) / config.spheres_per_bone;
      splat(a + (b - a) * t);
    }
  }
  // Palm interior: wrist to each MCP.
  const Vec3 wrist = joints[hand::kWrist];
  for (int f = 0; f < hand::kNumFingers; ++f) {
    const Vec3 mcp = joints[static_cast<std::size_t>(
        hand::finger_base(static_cast<hand::Finger>(f)))];
    for (int k = 1; k < 4; ++k) splat(wrist + (mcp - wrist) * (0.25 * k));
  }
  return img;
}

}  // namespace mmhand::baselines
