#pragma once

// DeepPrior++-style baseline (Table I): a small CNN over the depth image
// regressing into a low-dimensional PCA pose prior whose coefficients are
// linearly decoded back to the 63-D joint vector — the defining trait of
// the DeepPrior family.

#include <vector>

#include "mmhand/baselines/datasets.hpp"
#include "mmhand/nn/sequential.hpp"

namespace mmhand::baselines {

struct DeepPriorConfig {
  int pca_components = 20;
  int epochs = 15;
  int batch_size = 8;
  double lr = 1e-3;
  std::uint64_t seed = 31;
};

/// Principal components of the training labels (row-major [K, 63]) plus
/// the mean, computed by power iteration with deflation.
struct PosePrior {
  nn::Tensor mean;        ///< [63]
  nn::Tensor components;  ///< [K, 63], orthonormal rows
};

PosePrior fit_pose_prior(const std::vector<DepthSample>& dataset,
                         int components);

class DeepPriorRegressor {
 public:
  DeepPriorRegressor(const DeepPriorConfig& config,
                     const DepthCameraConfig& camera);

  void train(const std::vector<DepthSample>& dataset);
  hand::JointSet predict(const nn::Tensor& depth);
  double evaluate_mpjpe_mm(const std::vector<DepthSample>& test);

  const PosePrior& prior() const { return prior_; }

 private:
  nn::Tensor decode(const nn::Tensor& coeffs) const;   ///< [1,K] -> [1,63]
  nn::Tensor encode(const nn::Tensor& label63) const;  ///< [1,63] -> [1,K]

  DeepPriorConfig config_;
  DepthCameraConfig camera_;
  PosePrior prior_;
  nn::Sequential net_;   ///< conv trunk over the depth image
  nn::Sequential head_;  ///< flattened features -> PCA coefficients
  bool trained_ = false;
};

}  // namespace mmhand::baselines
