#pragma once

// HandFi-style baseline (Table I): 3-D hand skeletons from commercial WiFi
// CSI.  A 5.18 GHz OFDM link (30 subcarriers, 3 RX antennas) is simulated
// against the same hand scatterer scenes; amplitude and inter-antenna
// phase-difference features feed an MLP regressor.  WiFi's centimeter
// wavelength and narrow bandwidth give it far coarser spatial resolution
// than the 4 GHz mmWave sweep, which is why its MPJPE lands near 20 mm.

#include <complex>

#include "mmhand/hand/gesture.hpp"
#include "mmhand/nn/sequential.hpp"
#include "mmhand/radar/scatterer.hpp"

namespace mmhand::baselines {

struct WifiConfig {
  double carrier_hz = 5.18e9;
  double subcarrier_spacing_hz = 312.5e3;
  int subcarriers = 30;
  int rx_antennas = 3;
  double antenna_spacing_m = 0.028;  ///< ~lambda/2 at 5.18 GHz
  double noise_stddev = 0.01;
  /// Transmitter offset from the receiver array (bistatic link).
  Vec3 tx_position{-0.4, 0.0, 0.0};
};

/// CSI matrix H[antenna][subcarrier] for a scatterer scene.
std::vector<std::complex<double>> simulate_csi(const radar::Scene& scene,
                                               const WifiConfig& config,
                                               Rng& rng);

struct HandFiConfig {
  WifiConfig wifi;
  int train_frames = 1200;
  int test_frames = 300;
  int epochs = 15;
  double lr = 1e-3;
  std::uint64_t seed = 51;
};

class HandFiBaseline {
 public:
  explicit HandFiBaseline(const HandFiConfig& config);

  void train();
  double evaluate_mpjpe_mm();

 private:
  nn::Tensor csi_features(const std::vector<std::complex<double>>& csi) const;
  int feature_dim() const {
    return config_.wifi.rx_antennas * config_.wifi.subcarriers * 2;
  }

  HandFiConfig config_;
  nn::Sequential net_;
  bool trained_ = false;
};

}  // namespace mmhand::baselines
