#include "mmhand/baselines/datasets.hpp"

#include "mmhand/hand/kinematics.hpp"

namespace mmhand::baselines {

std::vector<DepthSample> make_depth_dataset(
    const DepthDatasetConfig& config) {
  MMHAND_CHECK(config.samples >= 1, "depth dataset size");
  Rng rng(config.seed);

  const bool msra = config.variant == VisionDataset::kMsraLike;
  const double depth_noise = msra ? 0.020 : 0.008;   // image noise
  const double label_noise = msra ? 0.004 : 0.0015;  // annotation noise
  hand::GestureScriptConfig script_cfg;
  if (!msra) {
    // ICVL-like: narrower gesture inventory.
    script_cfg.vocabulary = {hand::Gesture::kOpenPalm, hand::Gesture::kFist,
                             hand::Gesture::kPoint, hand::Gesture::kPinch,
                             hand::Gesture::kCount3};
  }
  script_cfg.orientation_wobble_rad = msra ? 0.20 : 0.10;

  const double duration = config.samples * 0.25;
  hand::GestureScript script(script_cfg, rng.fork(), duration);

  std::vector<DepthSample> out;
  out.reserve(static_cast<std::size_t>(config.samples));
  for (int i = 0; i < config.samples; ++i) {
    const double t = (static_cast<double>(i) + 0.5) * 0.25;
    const auto pose = script.pose_at(t);
    // Per-sample user variety, as in the multi-subject datasets.
    const auto profile = hand::HandProfile::for_user(rng.uniform_int(0, 9));
    const auto joints = hand::forward_kinematics(profile, pose);

    DepthSample sample;
    sample.joints = joints;
    sample.depth = render_depth(joints, config.camera);
    for (std::size_t e = 0; e < sample.depth.numel(); ++e)
      sample.depth[e] += static_cast<float>(rng.normal(0.0, depth_noise));
    sample.label = nn::Tensor({1, 63});
    for (int j = 0; j < hand::kNumJoints; ++j) {
      const Vec3 p = joints[static_cast<std::size_t>(j)] +
                     Vec3{rng.normal(0.0, label_noise),
                          rng.normal(0.0, label_noise),
                          rng.normal(0.0, label_noise)};
      sample.label.at(0, 3 * j) = static_cast<float>(p.x);
      sample.label.at(0, 3 * j + 1) = static_cast<float>(p.y);
      sample.label.at(0, 3 * j + 2) = static_cast<float>(p.z);
    }
    out.push_back(std::move(sample));
  }
  return out;
}

}  // namespace mmhand::baselines
