#pragma once

// Cascade baseline — a re-implementation of cascaded hand pose regression
// in the spirit of Sun et al. (Table I's "Cascade"): starting from the
// training-set mean pose, each stage samples depth features around the
// currently estimated joints and applies a learned linear update.

#include <vector>

#include "mmhand/baselines/datasets.hpp"
#include "mmhand/nn/linear.hpp"

namespace mmhand::baselines {

struct CascadeConfig {
  int stages = 4;
  int epochs_per_stage = 12;
  double lr = 5e-4;
  std::uint64_t seed = 21;
};

class CascadeRegressor {
 public:
  CascadeRegressor(const CascadeConfig& config,
                   const DepthCameraConfig& camera);

  /// Trains all stages sequentially on the dataset.
  void train(const std::vector<DepthSample>& dataset);

  /// Predicts the 21 joints for one depth image.
  hand::JointSet predict(const nn::Tensor& depth) const;

  /// Mean per-joint error (mm) over a test set.
  double evaluate_mpjpe_mm(const std::vector<DepthSample>& test) const;

 private:
  /// Features: depth sampled at the projected joint pixel and a star of 8
  /// offsets around it, for every joint (21 * 9 values).
  nn::Tensor features(const nn::Tensor& depth,
                      const hand::JointSet& estimate) const;

  hand::JointSet run_cascade(const nn::Tensor& depth, int stages) const;

  CascadeConfig config_;
  DepthCameraConfig camera_;
  hand::JointSet mean_pose_{};
  std::vector<std::unique_ptr<nn::Linear>> stages_;
};

}  // namespace mmhand::baselines
