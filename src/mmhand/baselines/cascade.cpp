#include "mmhand/baselines/cascade.hpp"

#include <algorithm>

#include "mmhand/nn/loss.hpp"
#include "mmhand/nn/optimizer.hpp"

namespace mmhand::baselines {

namespace {

constexpr int kFeaturesPerJoint = 9;
constexpr int kFeatureDim = hand::kNumJoints * kFeaturesPerJoint;

hand::JointSet add_update(const hand::JointSet& base,
                          const nn::Tensor& delta) {
  hand::JointSet out = base;
  for (int j = 0; j < hand::kNumJoints; ++j)
    out[static_cast<std::size_t>(j)] +=
        Vec3{delta.at(0, 3 * j), delta.at(0, 3 * j + 1),
             delta.at(0, 3 * j + 2)};
  return out;
}

nn::Tensor residual(const hand::JointSet& estimate,
                    const hand::JointSet& truth) {
  nn::Tensor r({1, 63});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    const Vec3 d = truth[static_cast<std::size_t>(j)] -
                   estimate[static_cast<std::size_t>(j)];
    r.at(0, 3 * j) = static_cast<float>(d.x);
    r.at(0, 3 * j + 1) = static_cast<float>(d.y);
    r.at(0, 3 * j + 2) = static_cast<float>(d.z);
  }
  return r;
}

}  // namespace

CascadeRegressor::CascadeRegressor(const CascadeConfig& config,
                                   const DepthCameraConfig& camera)
    : config_(config), camera_(camera) {
  MMHAND_CHECK(config.stages >= 1, "cascade stages");
}

nn::Tensor CascadeRegressor::features(const nn::Tensor& depth,
                                      const hand::JointSet& estimate) const {
  static constexpr int kOffsets[kFeaturesPerJoint][2] = {
      {0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1},
      {2, 2}, {-2, 2}, {2, -2}, {-2, -2}};
  nn::Tensor f({1, kFeatureDim});
  for (int j = 0; j < hand::kNumJoints; ++j) {
    int px, py;
    project_to_pixel(estimate[static_cast<std::size_t>(j)], camera_, px, py);
    for (int k = 0; k < kFeaturesPerJoint; ++k) {
      const int x = std::clamp(px + kOffsets[k][0], 0, camera_.width - 1);
      const int y = std::clamp(py + kOffsets[k][1], 0, camera_.height - 1);
      // Background-relative depth: empty pixels contribute 0, which keeps
      // the linear system well conditioned.
      f.at(0, j * kFeaturesPerJoint + k) =
          camera_.background - depth.at(0, y, x);
    }
  }
  return f;
}

hand::JointSet CascadeRegressor::run_cascade(const nn::Tensor& depth,
                                             int stages) const {
  hand::JointSet estimate = mean_pose_;
  for (int s = 0; s < stages && s < static_cast<int>(stages_.size()); ++s) {
    const nn::Tensor f = features(depth, estimate);
    const nn::Tensor delta = stages_[static_cast<std::size_t>(s)]->forward(
        f, /*training=*/false);
    estimate = add_update(estimate, delta);
  }
  return estimate;
}

void CascadeRegressor::train(const std::vector<DepthSample>& dataset) {
  MMHAND_CHECK(!dataset.empty(), "cascade needs training data");
  Rng rng(config_.seed);

  // Mean pose initialization.
  mean_pose_ = {};
  for (const auto& s : dataset)
    for (int j = 0; j < hand::kNumJoints; ++j)
      mean_pose_[static_cast<std::size_t>(j)] +=
          s.joints[static_cast<std::size_t>(j)];
  for (auto& p : mean_pose_)
    p = p / static_cast<double>(dataset.size());

  stages_.clear();
  for (int s = 0; s < config_.stages; ++s) {
    auto stage = std::make_unique<nn::Linear>(kFeatureDim, 63, rng);
    // Zero-init the update so an untrained stage is a no-op.
    stage->weight().value.zero();
    stage->bias().value.zero();
    nn::Adam opt(stage->parameters(), {.lr = config_.lr});

    // The cascade prefix is frozen while this stage trains, so the stage's
    // inputs/targets are fixed: precompute them once.
    std::vector<nn::Tensor> stage_features, stage_targets;
    stage_features.reserve(dataset.size());
    stage_targets.reserve(dataset.size());
    for (const auto& sample : dataset) {
      const hand::JointSet estimate = run_cascade(sample.depth, s);
      stage_features.push_back(features(sample.depth, estimate));
      stage_targets.push_back(residual(estimate, sample.joints));
    }

    for (int epoch = 0; epoch < config_.epochs_per_stage; ++epoch) {
      const double lr_scale =
          nn::cosine_decay(epoch, config_.epochs_per_stage);
      const auto order = rng.permutation(static_cast<int>(dataset.size()));
      int since = 0;
      opt.zero_grad();
      for (int idx : order) {
        const auto i = static_cast<std::size_t>(idx);
        const nn::Tensor pred = stage->forward(stage_features[i], true);
        const auto loss = nn::mse_loss(pred, stage_targets[i]);
        (void)stage->backward(loss.grad);
        if (++since >= 8) {
          opt.step(lr_scale);
          opt.zero_grad();
          since = 0;
        }
      }
      if (since > 0) {
        opt.step(lr_scale);
        opt.zero_grad();
      }
    }
    stages_.push_back(std::move(stage));
  }
}

hand::JointSet CascadeRegressor::predict(const nn::Tensor& depth) const {
  MMHAND_CHECK(!stages_.empty(), "cascade not trained");
  return run_cascade(depth, static_cast<int>(stages_.size()));
}

double CascadeRegressor::evaluate_mpjpe_mm(
    const std::vector<DepthSample>& test) const {
  MMHAND_CHECK(!test.empty(), "cascade evaluation set empty");
  double total = 0.0;
  for (const auto& sample : test) {
    const auto pred = predict(sample.depth);
    for (int j = 0; j < hand::kNumJoints; ++j)
      total += 1000.0 * distance(pred[static_cast<std::size_t>(j)],
                                 sample.joints[static_cast<std::size_t>(j)]);
  }
  return total / (static_cast<double>(test.size()) * hand::kNumJoints);
}

}  // namespace mmhand::baselines
